// Coordinator role: the cluster front door. POST /ingest routes each
// document to its owning shard by content hash; POST /query answers
// from the merged snapshot the pull/merge loop (internal/cluster)
// publishes, optionally refreshing it first (?fresh=1); GET /cluster
// reports per-shard provenance. See the package comment of
// internal/cluster for the topology and staleness semantics.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"sketchtree"
	"sketchtree/internal/cluster"
	"sketchtree/internal/obs"
	"sketchtree/internal/obs/trace"
)

// Coordinator serves the cluster API over a Puller's merged state.
type Coordinator struct {
	puller   *cluster.Puller
	fallback *sketchtree.SketchTree
	opts     Options
	sem      chan struct{}
	client   *http.Client
	met      *obs.ClusterMetrics
	httpm    *obs.HTTPMetrics
	draining atomic.Bool
	mux      *http.ServeMux
	handler  http.Handler
}

// NewCoordinator builds a Coordinator over puller. fallback answers
// queries before the first successful pull (typically an empty engine
// built from the shards' Config, so early queries see zero counts
// instead of errors); met receives routed-ingest accounting and is
// exported on /metrics alongside the puller's pull counters.
func NewCoordinator(puller *cluster.Puller, fallback *sketchtree.SketchTree, met *obs.ClusterMetrics, opts Options) *Coordinator {
	co := &Coordinator{
		puller:   puller,
		fallback: fallback,
		opts:     opts.normalize(),
		client:   &http.Client{},
		met:      met,
		httpm:    obs.NewHTTPMetrics(),
	}
	if co.opts.Role == "standalone" {
		co.opts.Role = "coordinator"
	}
	co.sem = make(chan struct{}, co.opts.MaxConcurrent)
	co.mux = http.NewServeMux()
	co.mux.HandleFunc("POST /ingest", co.handleIngest)
	co.mux.HandleFunc("POST /query", co.handleQuery)
	co.mux.HandleFunc("GET /cluster", co.handleCluster)
	co.mux.HandleFunc("GET /window", co.handleWindow)
	co.mux.HandleFunc("GET /healthz", co.handleHealthz)
	co.mux.Handle("GET /stats", sketchtree.StatsJSONHandler(co.engineStats))
	co.mux.HandleFunc("GET /metrics", co.handleMetrics)
	co.mux.Handle("GET /debug/requests", co.opts.Trace.Handler())
	co.handler = instrument(co.mux, co.opts.Trace, co.httpm, co.opts.Logger, co.opts.Role)
	return co
}

// Handler returns the HTTP handler; Run is the usual entry point.
func (co *Coordinator) Handler() http.Handler { return co.handler }

// Draining reports whether the coordinator has begun graceful
// shutdown.
func (co *Coordinator) Draining() bool { return co.draining.Load() }

// Run starts the pull/merge loop and serves the cluster API on ln
// until ctx is canceled, then drains gracefully: new connections are
// refused, /healthz and /cluster flip to draining, in-flight requests
// are answered (bounded by DrainTimeout), and finally the pull loop is
// stopped and joined. Returns nil after a clean drain.
func (co *Coordinator) Run(ctx context.Context, ln net.Listener) error {
	pctx, pcancel := context.WithCancel(context.Background())
	pdone := make(chan struct{})
	go func() {
		defer close(pdone)
		co.puller.Run(pctx)
	}()
	defer func() {
		pcancel()
		<-pdone
		// Drop pooled conns to the shards (routed ingests), so shard
		// drains never wait on this coordinator's quiet keep-alives.
		co.client.CloseIdleConnections()
	}()

	srv := &http.Server{Handler: co.handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	co.draining.Store(true)
	sctx := context.Background()
	if co.opts.DrainTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, co.opts.DrainTimeout)
		defer cancel()
	}
	err := srv.Shutdown(sctx)
	if err != nil {
		srv.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	return err
}

// engine returns the best estimator available now: the merged serving
// state, or the fallback before the first successful pull. The second
// result is the merged provenance (nil when falling back).
func (co *Coordinator) engine() (engine, *cluster.Serving) {
	if sv := co.puller.Serving(); sv != nil {
		return sv.Tree, sv
	}
	return co.fallback, nil
}

func (co *Coordinator) engineStats() sketchtree.Stats {
	if sv := co.puller.Serving(); sv != nil {
		return sv.Tree.Stats()
	}
	return co.fallback.Stats()
}

// handleIngest routes the document to its owning shard and relays the
// shard's response verbatim (so partial-forest and cap errors keep
// their structure end to end). The coordinator applies its own body
// cap before buffering: routing needs the whole document for hashing.
func (co *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	serveLimited(w, r, co.sem, co.opts.Timeout, func(ctx context.Context) (any, error) {
		tr := trace.FromContext(ctx)
		sp := tr.StartSpan("route")
		src := r.Body
		if co.opts.MaxIngestBody > 0 {
			src = http.MaxBytesReader(w, r.Body, co.opts.MaxIngestBody)
		}
		doc, err := io.ReadAll(&ctxReader{ctx: ctx, r: src})
		if err != nil {
			tr.EndSpan(sp)
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				err = fmt.Errorf("request body exceeds %d bytes", co.opts.MaxIngestBody)
				return nil, &statusError{
					Code: http.StatusRequestEntityTooLarge,
					Body: errorBody(ctx, err.Error()),
					Err:  err,
				}
			}
			return nil, fmt.Errorf("reading request body: %w", err)
		}
		shard := co.puller.Route(doc)
		tr.EndSpan(sp)
		tr.Annotate("shard", strconv.Itoa(shard))
		shardError := func(msg string) map[string]any {
			b := map[string]any{"error": msg, "shard": shard}
			if id := tr.ID(); id != "" {
				b["trace_id"] = id
			}
			return b
		}
		url := co.puller.ShardURL(shard) + "/ingest"
		if r.URL.Query().Get("forest") != "" {
			url += "?forest=1"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(doc))
		if err != nil {
			co.met.RouteDone(shard, err)
			return nil, err
		}
		req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
		if id := tr.ID(); id != "" {
			// The shard adopts this ID, so its flight recorder joins
			// against ours on /debug/requests?trace_id=.
			req.Header.Set(trace.Header, id)
		}
		sp = tr.StartSpan("forward")
		resp, err := co.client.Do(req)
		co.met.RouteDone(shard, err)
		if err != nil {
			tr.EndSpan(sp)
			err = fmt.Errorf("shard %d (%s) unreachable: %v", shard, co.puller.ShardURL(shard), err)
			co.opts.Logger.Warn("routed ingest failed", "role", co.opts.Role,
				"shard", shard, "url", url, "err", err, "trace_id", tr.ID())
			return nil, &statusError{
				Code: http.StatusBadGateway,
				Body: shardError(err.Error()),
				Err:  err,
			}
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxQueryBody))
		tr.EndSpan(sp)
		if err != nil {
			return nil, &statusError{
				Code: http.StatusBadGateway,
				Body: shardError(fmt.Sprintf("reading shard %d response: %v", shard, err)),
				Err:  err,
			}
		}
		// Relay the shard's exact response; the shard header tells the
		// client where its document landed.
		w.Header().Set("X-Sketchtree-Shard", strconv.Itoa(shard))
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		if _, err := w.Write(body); err != nil {
			_ = err // status already on the wire
		}
		return nil, errHandled
	})
}

// errHandled tells serveLimited the handler already wrote the
// response.
var errHandled = errors.New("server: response already written")

// handleQuery answers from the merged snapshot. With ?fresh=1 the
// coordinator first runs one synchronous pull round (ignoring backoff
// windows), trading latency for freshness; pull failures fall back to
// the best merged state available — freshness is best-effort, answers
// never 5xx because a shard is down.
func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	fresh := r.URL.Query().Get("fresh") != ""
	serveLimited(w, r, co.sem, co.opts.Timeout, func(ctx context.Context) (any, error) {
		var req queryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding request: %w", err)
		}
		if fresh {
			// Best effort: a failed pull serves the last merged state.
			// ctx carries the request trace, so the round's per-shard
			// pull spans nest under this request.
			_ = co.puller.PullNow(ctx)
		}
		eng, sv := co.engine()
		resp, err := answerQuery(ctx, eng, &req, co.opts.Role)
		if err != nil {
			return nil, err
		}
		if sv != nil {
			resp.Snapshot = true
			resp.SnapshotTrees = sv.Trees
		}
		return resp, nil
	})
}

// clusterResponse is the GET /cluster body: the coordinator's merged
// serving state and every shard's provenance.
type clusterResponse struct {
	Role     string                     `json:"role"`
	Status   string                     `json:"status"`
	Shards   []cluster.ShardStatus      `json:"shards"`
	Merged   *mergedStatus              `json:"merged,omitempty"`
	Pulls    []obs.ClusterShardSnapshot `json:"pulls,omitempty"`
	Fallback bool                       `json:"fallback"`
}

// mergedStatus is the merged snapshot's provenance within /cluster.
type mergedStatus struct {
	Trees  int64 `json:"trees"`
	AgeMS  int64 `json:"age_ms"`
	Rounds int64 `json:"rounds"`
}

func (co *Coordinator) clusterStatus() clusterResponse {
	resp := clusterResponse{
		Role:   "coordinator",
		Status: "ok",
		Shards: co.puller.Status(),
		Pulls:  co.met.Snapshot(),
	}
	if co.draining.Load() {
		resp.Status = "draining"
	}
	if sv := co.puller.Serving(); sv != nil {
		resp.Merged = &mergedStatus{
			Trees:  sv.Trees,
			AgeMS:  time.Since(sv.Built).Milliseconds(),
			Rounds: sv.Rounds,
		}
	} else {
		resp.Fallback = true
	}
	return resp
}

func (co *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, co.clusterStatus())
}

// clusterWindowResponse is the coordinator's GET /window body: the
// policy the coordinator was configured with (provenance — shards
// enforce their own) and every shard's window section, fetched
// best-effort over GET /window. An unreachable shard contributes its
// error instead of failing the whole response, mirroring /cluster's
// degradation semantics.
type clusterWindowResponse struct {
	Role    string             `json:"role"`
	Enabled bool               `json:"enabled"` // any shard reported a window
	Policy  *windowPolicyJSON  `json:"policy,omitempty"`
	Shards  []shardWindowState `json:"shards"`
}

// windowPolicyJSON is the configured window policy's provenance form.
type windowPolicyJSON struct {
	Slices     int   `json:"slices"`
	SliceTrees int   `json:"slice_trees,omitempty"`
	SliceDurMS int64 `json:"slice_dur_ms,omitempty"`
}

// shardWindowState is one shard's window section within the
// coordinator's GET /window.
type shardWindowState struct {
	Shard   int                 `json:"shard"`
	URL     string              `json:"url"`
	Enabled bool                `json:"enabled"`
	Window  *obs.WindowSnapshot `json:"window,omitempty"`
	Error   string              `json:"error,omitempty"`
}

func (co *Coordinator) handleWindow(w http.ResponseWriter, r *http.Request) {
	resp := clusterWindowResponse{Role: co.opts.Role}
	if p := co.opts.Window; p != nil {
		resp.Policy = &windowPolicyJSON{
			Slices:     p.Slices,
			SliceTrees: p.SliceTrees,
			SliceDurMS: p.SliceDur.Milliseconds(),
		}
	}
	for i := range co.puller.Status() {
		st := shardWindowState{Shard: i, URL: co.puller.ShardURL(i)}
		if err := co.fetchShardWindow(r.Context(), &st); err != nil {
			st.Error = err.Error()
		}
		if st.Enabled {
			resp.Enabled = true
		}
		resp.Shards = append(resp.Shards, st)
	}
	writeJSON(w, resp)
}

// fetchShardWindow fills st from the shard's GET /window.
func (co *Coordinator) fetchShardWindow(ctx context.Context, st *shardWindowState) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.URL+"/window", nil)
	if err != nil {
		return err
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard answered %s", resp.Status)
	}
	var body windowResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxQueryBody)).Decode(&body); err != nil {
		return fmt.Errorf("decoding shard response: %w", err)
	}
	st.Enabled = body.Enabled
	st.Window = body.Window
	return nil
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if co.draining.Load() {
		writeJSONStatus(w, http.StatusServiceUnavailable, healthzResponse{Status: "draining"})
		return
	}
	resp := healthzResponse{Status: "ok"}
	if sv := co.puller.Serving(); sv != nil {
		resp.Trees = sv.Trees
		resp.Snapshot = true
		resp.SnapshotTrees = sv.Trees
		resp.SnapshotAgeMS = time.Since(sv.Built).Milliseconds()
	}
	writeJSON(w, resp)
}

// handleMetrics serves the merged engine's Prometheus families followed
// by the per-shard cluster families (pull latency/failures, routed
// ingests).
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sketchtree.StatsPromHandler(co.engineStats).ServeHTTP(w, r)
	obs.WriteClusterProm(w, co.met.Snapshot())
	obs.WriteHTTPProm(w, co.httpm.Snapshot())
}
