// Request observability middleware shared by the shard Server and the
// Coordinator: every request gets a trace in the flight recorder
// (adopting an upstream X-Sketchtree-Trace-Id or minting one), a
// per-endpoint/status counter tick, and a structured log line when it
// fails or runs slow. Success at normal speed is deliberately silent —
// per-request logging on the hot path would allocate for traffic
// nobody reads; the flight recorder is the per-request record.

package server

import (
	"log/slog"
	"net/http"
	"time"

	"sketchtree/internal/obs"
	"sketchtree/internal/obs/trace"
)

// statusWriter captures the response status for the counters, the
// trace, and the log line. Unwrap keeps http.ResponseController
// functional through the wrapper (handleIngest sets read deadlines).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// endpointLabel maps a request path to a bounded metrics/trace label.
// Unknown paths collapse to "other" so hostile URLs cannot inflate
// counter cardinality.
func endpointLabel(path string) string {
	switch path {
	case "/query", "/ingest", "/synopsis", "/healthz", "/stats", "/metrics",
		"/cluster", "/debug/requests":
		return path
	}
	return "other"
}

// instrument wraps next with the request observability layer. rec may
// be nil (tracing off: no header, no recorder work); httpm and log are
// nil-safe / no-op respectively. /debug/requests is counted but not
// traced — reading the flight recorder should not churn it.
func instrument(next http.Handler, rec *trace.Recorder, httpm *obs.HTTPMetrics, log *slog.Logger, role string) http.Handler {
	slow, slowOK := rec.SlowThreshold()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointLabel(r.URL.Path)
		start := time.Now()
		var tr *trace.Trace
		if ep != "/debug/requests" {
			tr = rec.Start(ep, r.Header.Get(trace.Header))
		}
		if tr != nil {
			w.Header().Set(trace.Header, tr.ID())
			r = r.WithContext(trace.NewContext(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		id := tr.ID()
		tr.Finish(code)
		httpm.Observe(ep, code)
		dur := time.Since(start)
		switch {
		case code >= 500:
			log.Warn("request failed", "role", role, "endpoint", ep, "code", code,
				"duration", dur, "trace_id", id)
		case code >= 400:
			log.Info("request rejected", "role", role, "endpoint", ep, "code", code,
				"duration", dur, "trace_id", id)
		case slowOK && slow > 0 && dur >= slow:
			// A zero threshold retains everything in the recorder's slow
			// ring but would turn every request into a Warn line; the
			// slow *log line* needs a real threshold.
			log.Warn("slow request", "role", role, "endpoint", ep, "code", code,
				"duration", dur, "trace_id", id)
		}
	})
}
