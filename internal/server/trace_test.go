package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sketchtree"
	"sketchtree/internal/cluster"
	"sketchtree/internal/obs"
	"sketchtree/internal/obs/trace"
)

// debugDump mirrors the GET /debug/requests body for assertions.
type debugDump struct {
	Enabled    bool               `json:"enabled"`
	Role       string             `json:"role"`
	Recent     []*trace.Completed `json:"recent"`
	Slow       []*trace.Completed `json:"slow"`
	Background []*trace.Completed `json:"background"`
}

func getDebugRequests(t *testing.T, base, traceID string) debugDump {
	t.Helper()
	url := base + "/debug/requests"
	if traceID != "" {
		url += "?trace_id=" + traceID
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests: status %d", resp.StatusCode)
	}
	var d debugDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

func spanNames(c *trace.Completed) map[string]bool {
	names := make(map[string]bool)
	for _, sp := range c.Spans {
		names[sp.Name] = true
	}
	return names
}

func TestTraceAdoptedAndRecorded(t *testing.T) {
	rec := trace.New("standalone", 32, 0)
	_, _, ts := newTestServer(t, Options{Trace: rec})

	body := `{"kind":"ordered","pattern":"a/b"}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, "upstream-trace-0001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(trace.Header); got != "upstream-trace-0001" {
		t.Fatalf("response trace header %q, want adopted upstream ID", got)
	}

	d := getDebugRequests(t, ts.URL, "upstream-trace-0001")
	if !d.Enabled || d.Role != "standalone" {
		t.Fatalf("debug dump header = %+v", d)
	}
	if len(d.Recent) != 1 {
		t.Fatalf("trace_id lookup found %d traces, want 1", len(d.Recent))
	}
	c := d.Recent[0]
	if c.Endpoint != "/query" || c.Status != http.StatusOK {
		t.Fatalf("trace = %+v", c)
	}
	names := spanNames(c)
	if !names["plan"] || !names["eval"] {
		t.Fatalf("query trace spans = %v, want plan and eval", names)
	}
	if c.Attrs["kind"] != "ordered" {
		t.Fatalf("trace attrs = %v", c.Attrs)
	}
}

func TestTraceMintedWhenAbsent(t *testing.T) {
	rec := trace.New("standalone", 32, -1)
	_, _, ts := newTestServer(t, Options{Trace: rec})
	resp, err := http.Post(ts.URL+"/ingest", "application/xml", strings.NewReader("<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get(trace.Header)
	if len(id) != 32 {
		t.Fatalf("minted trace ID %q, want 32 hex chars", id)
	}
	d := getDebugRequests(t, ts.URL, id)
	if len(d.Recent) != 1 {
		t.Fatalf("minted ID not found in recorder")
	}
	names := spanNames(d.Recent[0])
	if !names["parse"] || !names["apply"] {
		t.Fatalf("ingest trace spans = %v, want parse and apply", names)
	}
}

func TestErrorBodyCarriesTraceID(t *testing.T) {
	rec := trace.New("standalone", 32, -1)
	_, _, ts := newTestServer(t, Options{Trace: rec})

	// Bad query: 400 through the generic error path.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"kind":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	id := resp.Header.Get(trace.Header)
	if id == "" || body["trace_id"] != id {
		t.Fatalf("error body trace_id = %v, response header %q — must match", body["trace_id"], id)
	}

	// Partial forest ingest: structured ingestError body.
	resp, err = http.Post(ts.URL+"/ingest?forest=1", "application/xml",
		strings.NewReader("<f><a><b/></a><bad"))
	if err != nil {
		t.Fatal(err)
	}
	var ie ingestError
	if err := json.NewDecoder(resp.Body).Decode(&ie); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forest status %d, want 400", resp.StatusCode)
	}
	if ie.TraceID == "" || ie.TraceID != resp.Header.Get(trace.Header) {
		t.Fatalf("ingestError trace_id = %q, header %q", ie.TraceID, resp.Header.Get(trace.Header))
	}
}

func TestHTTPStatusCounters(t *testing.T) {
	_, _, ts := newTestServer(t, Options{})
	if _, qr := postQuery(t, ts.URL, queryRequest{Kind: "ordered", Pattern: "a/b"}); qr.Kind == "" {
		t.Fatal("query failed")
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"kind":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`sketchtree_http_requests_total{endpoint="/query",code="200"} 1`,
		`sketchtree_http_requests_total{endpoint="/query",code="400"} 1`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestTracingBitIdentical feeds the same corpus and queries through a
// traced and an untraced server and requires byte-identical synopses
// and bit-identical answers: tracing must be pure observation.
func TestTracingBitIdentical(t *testing.T) {
	corpus := clusterDocs(40)
	queries := []queryRequest{
		{Kind: "ordered", Pattern: "a/b"},
		{Kind: "unordered", Pattern: "(a (c) (b))"},
		{Kind: "set", Patterns: []string{"a/b", "a/c"}},
		{Kind: "ordered", Pattern: "a/d", WithError: true},
	}
	run := func(opts Options) (synopsis []byte, answers []queryResponse) {
		safe, err := sketchtree.NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(safe, opts).Handler())
		defer ts.Close()
		for _, doc := range corpus {
			resp, err := http.Post(ts.URL+"/ingest", "application/xml", strings.NewReader(doc))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest status %d", resp.StatusCode)
			}
		}
		for _, q := range queries {
			resp, qr := postQuery(t, ts.URL, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %+v: status %d", q, resp.StatusCode)
			}
			answers = append(answers, qr)
		}
		sresp, err := http.Get(ts.URL + "/synopsis")
		if err != nil {
			t.Fatal(err)
		}
		synopsis, err = io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return synopsis, answers
	}

	plainSyn, plainAns := run(Options{})
	tracedSyn, tracedAns := run(Options{Trace: trace.New("standalone", 64, 0)})
	if !bytes.Equal(plainSyn, tracedSyn) {
		t.Fatalf("synopsis differs with tracing on: %d vs %d bytes", len(plainSyn), len(tracedSyn))
	}
	for i := range plainAns {
		if plainAns[i].Estimate != tracedAns[i].Estimate {
			t.Fatalf("query %d: traced estimate %v != untraced %v",
				i, tracedAns[i].Estimate, plainAns[i].Estimate)
		}
		if (plainAns[i].StdErr == nil) != (tracedAns[i].StdErr == nil) {
			t.Fatalf("query %d: stderr presence differs", i)
		}
		if plainAns[i].StdErr != nil && *plainAns[i].StdErr != *tracedAns[i].StdErr {
			t.Fatalf("query %d: traced stderr %v != untraced %v",
				i, *tracedAns[i].StdErr, *plainAns[i].StdErr)
		}
	}
}

func TestTracingDisabled(t *testing.T) {
	_, _, ts := newTestServer(t, Options{}) // no recorder
	resp, qr := postQuery(t, ts.URL, queryRequest{Kind: "ordered", Pattern: "a/b"})
	if resp.StatusCode != http.StatusOK || qr.Kind == "" {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(trace.Header); got != "" {
		t.Fatalf("disabled tracing still sets trace header %q", got)
	}
	d := getDebugRequests(t, ts.URL, "")
	if d.Enabled {
		t.Fatal("/debug/requests reports enabled without a recorder")
	}
}

// TestCoordinatorTracePropagation is the in-process half of the e2e
// acceptance criterion: a routed ingest's coordinator trace ID must
// resolve on the target shard's /debug/requests, and a fresh query's
// pull spans must land in the coordinator trace while the shard records
// the synopsis pull under the same ID.
func TestCoordinatorTracePropagation(t *testing.T) {
	const n = 2
	shardRecs := make([]*trace.Recorder, n)
	urls := make([]string, n)
	shardTS := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		safe, err := sketchtree.NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		shardRecs[i] = trace.New("shard", 64, 0)
		ts := httptest.NewServer(New(safe, Options{Trace: shardRecs[i], Role: "shard"}).Handler())
		t.Cleanup(ts.Close)
		shardTS[i] = ts
		urls[i] = ts.URL
	}
	met := obs.NewClusterMetrics(n)
	coRec := trace.New("coordinator", 64, 0)
	puller, err := cluster.New(cluster.Config{
		Shards:      urls,
		PullEvery:   time.Hour,
		PullTimeout: 5 * time.Second,
		Metrics:     met,
		Trace:       coRec,
	})
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := sketchtree.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(puller, fallback, met, Options{Trace: coRec, Role: "coordinator"})
	coTS := httptest.NewServer(co.Handler())
	t.Cleanup(coTS.Close)

	// Routed ingest: the coordinator's trace ID must appear on the
	// shard that applied the document.
	doc := "<a><b/><c/></a>"
	resp, err := http.Post(coTS.URL+"/ingest", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed ingest status %d", resp.StatusCode)
	}
	id := resp.Header.Get(trace.Header)
	if id == "" {
		t.Fatal("routed ingest response has no trace header")
	}
	shard := cluster.Route([]byte(doc), n)

	coDump := getDebugRequests(t, coTS.URL, id)
	if len(coDump.Recent) != 1 {
		t.Fatalf("coordinator recorder has %d traces for %s, want 1", len(coDump.Recent), id)
	}
	names := spanNames(coDump.Recent[0])
	if !names["route"] || !names["forward"] {
		t.Fatalf("coordinator ingest spans = %v, want route and forward", names)
	}
	shardDump := getDebugRequests(t, shardTS[shard].URL, id)
	if len(shardDump.Recent) != 1 {
		t.Fatalf("target shard recorder has %d traces for %s, want 1 (trace did not propagate)",
			len(shardDump.Recent), id)
	}
	if shardDump.Recent[0].Endpoint != "/ingest" || shardDump.Recent[0].Role != "shard" {
		t.Fatalf("shard trace = %+v", shardDump.Recent[0])
	}

	// Fresh query: the pull round's per-shard spans nest in the request
	// trace, and each shard records the /synopsis pull under its ID.
	qresp, err := http.Post(coTS.URL+"/query?fresh=1", "application/json",
		strings.NewReader(`{"kind":"ordered","pattern":"a/b"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qresp.Body)
	qresp.Body.Close()
	qid := qresp.Header.Get(trace.Header)
	if qid == "" {
		t.Fatal("fresh query has no trace header")
	}
	qDump := getDebugRequests(t, coTS.URL, qid)
	if len(qDump.Recent) != 1 {
		t.Fatalf("coordinator has %d traces for fresh query", len(qDump.Recent))
	}
	names = spanNames(qDump.Recent[0])
	for _, want := range []string{"plan", "eval", "pull:0", "pull:1", "merge", "publish"} {
		if !names[want] {
			t.Fatalf("fresh-query trace spans = %v, missing %q", names, want)
		}
	}
	for i := 0; i < n; i++ {
		sd := getDebugRequests(t, shardTS[i].URL, qid)
		if len(sd.Recent) != 1 || sd.Recent[0].Endpoint != "/synopsis" {
			t.Fatalf("shard %d: synopsis pull not recorded under query trace %s: %+v", i, qid, sd.Recent)
		}
	}
}

// TestBackgroundPullTraced runs one untraced round and expects it in
// the coordinator recorder's background ring.
func TestBackgroundPullTraced(t *testing.T) {
	safe, err := sketchtree.NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	shardTS := httptest.NewServer(New(safe, Options{}).Handler())
	t.Cleanup(shardTS.Close)
	rec := trace.New("coordinator", 16, -1)
	puller, err := cluster.New(cluster.Config{
		Shards:    []string{shardTS.URL},
		PullEvery: time.Hour,
		Trace:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := puller.PullNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(rec.Handler())
	t.Cleanup(h.Close)
	d := getDebugRequests(t, h.URL, "")
	if len(d.Background) != 1 {
		t.Fatalf("background ring holds %d traces, want 1", len(d.Background))
	}
	bg := d.Background[0]
	if !bg.Background || bg.Endpoint != "pull" {
		t.Fatalf("background trace = %+v", bg)
	}
	if names := spanNames(bg); !names["pull:0"] || !names["merge"] || !names["publish"] {
		t.Fatalf("background pull spans = %v", names)
	}
}
