// Package server implements the sketchtreed HTTP query API: a
// Safe-wrapped synopsis served over JSON, with a per-request timeout, a
// concurrency limiter, and graceful drain.
//
// Endpoints:
//
//	POST /query    ordered / unordered / set / expression counts,
//	               optionally with error bars (CI95)
//	POST /ingest   stream one XML tree (or, with ?forest=1, a rooted
//	               forest document) into the synopsis
//	GET  /healthz  liveness + snapshot provenance; 503 while draining
//	GET  /stats    observability snapshot (expvar-style JSON)
//	GET  /metrics  the same data in Prometheus text format
//
// Queries are answered through the Safe read path, so with snapshot
// serving enabled (sketchtreed -snapshot-every) they are lock-free and
// never wait behind an in-flight update.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"sketchtree"
	"sketchtree/internal/obs"
	"sketchtree/internal/obs/trace"
)

// Options bound a Server's resource use. The zero value selects the
// defaults noted on each field.
type Options struct {
	// Timeout is the per-request budget covering limiter wait, body
	// read, and evaluation; exceeding it answers 504. Default 5s;
	// negative disables.
	Timeout time.Duration

	// MaxConcurrent caps in-flight /query and /ingest requests; excess
	// requests wait (within Timeout) for a slot. Default 64.
	MaxConcurrent int

	// DrainTimeout bounds graceful shutdown: Run answers in-flight
	// requests for at most this long after its context is canceled,
	// then closes remaining connections. Default 10s; negative waits
	// indefinitely.
	DrainTimeout time.Duration

	// MaxIngestBody caps one /ingest request body in bytes; exceeding
	// it answers 413. Default 64 MiB; negative disables the cap.
	MaxIngestBody int64

	// Trace is the flight recorder behind GET /debug/requests. Nil
	// disables tracing: no per-request recorder work, no trace header.
	Trace *trace.Recorder

	// Logger receives structured request/failure logs. Default: a
	// no-op logger that never formats records.
	Logger *slog.Logger

	// Role labels logs, traces and pprof samples ("standalone",
	// "shard", "coordinator"). Default "standalone".
	Role string

	// Window records the sliding-window policy the daemon was
	// configured with — provenance for the coordinator's GET /window
	// aggregation (shards enforce their own policy through
	// Safe.EnableWindow; this field does not enable anything). Nil when
	// no window was requested.
	Window *sketchtree.WindowPolicy
}

const (
	defaultTimeout       = 5 * time.Second
	defaultMaxConcurrent = 64
	defaultDrainTimeout  = 10 * time.Second

	// maxQueryBody bounds a /query request body.
	maxQueryBody = 1 << 20

	// defaultMaxIngestBody bounds an /ingest request body unless
	// Options.MaxIngestBody overrides it.
	defaultMaxIngestBody = 64 << 20

	// maxErrorDrain bounds how much of an unread request body an error
	// response discards to keep the connection reusable. Larger
	// remainders give up and let the connection close — draining them
	// would cost more than a new connection.
	maxErrorDrain = 1 << 20
)

func (o Options) normalize() Options {
	if o.Timeout == 0 {
		o.Timeout = defaultTimeout
	}
	if o.Timeout < 0 {
		o.Timeout = 0
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = defaultMaxConcurrent
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = defaultDrainTimeout
	}
	if o.DrainTimeout < 0 {
		o.DrainTimeout = 0
	}
	if o.MaxIngestBody == 0 {
		o.MaxIngestBody = defaultMaxIngestBody
	}
	if o.MaxIngestBody < 0 {
		o.MaxIngestBody = 0
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	if o.Role == "" {
		o.Role = "standalone"
	}
	return o
}

// Server serves count queries over a shared Safe synopsis.
type Server struct {
	safe     *sketchtree.Safe
	opts     Options
	sem      chan struct{}
	draining atomic.Bool
	mux      *http.ServeMux
	httpm    *obs.HTTPMetrics
	handler  http.Handler
}

// New builds a Server over safe. The caller keeps ownership of safe and
// may update or query it directly alongside the HTTP traffic.
func New(safe *sketchtree.Safe, opts Options) *Server {
	s := &Server{
		safe:  safe,
		opts:  opts.normalize(),
		httpm: obs.NewHTTPMetrics(),
	}
	s.sem = make(chan struct{}, s.opts.MaxConcurrent)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /synopsis", s.handleSynopsis)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /window", s.handleWindow)
	s.mux.Handle("GET /stats", sketchtree.StatsJSONHandler(safe.Stats))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/requests", s.opts.Trace.Handler())
	s.handler = instrument(s.mux, s.opts.Trace, s.httpm, s.opts.Logger, s.opts.Role)
	return s
}

// Handler returns the HTTP handler; use it to mount the API under an
// existing server. Run is the usual entry point.
func (s *Server) Handler() http.Handler { return s.handler }

// handleMetrics serves the engine's Prometheus families followed by the
// per-endpoint/status request counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sketchtree.StatsPromHandler(s.safe.Stats).ServeHTTP(w, r)
	obs.WriteHTTPProm(w, s.httpm.Snapshot())
}

// Run serves the API on ln until ctx is canceled, then drains: new
// connections are refused, /healthz flips to 503, in-flight requests
// are answered (bounded by DrainTimeout), and remaining connections are
// closed. Returns nil after a clean drain.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	sctx := context.Background()
	if s.opts.DrainTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, s.opts.DrainTimeout)
		defer cancel()
	}
	err := srv.Shutdown(sctx)
	if err != nil {
		srv.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	return err
}

// Draining reports whether the server has begun graceful shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// serve runs fn under the concurrency limiter and the per-request
// timeout, answering JSON. See serveLimited.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context) (any, error)) {
	serveLimited(w, r, s.sem, s.opts.Timeout, fn)
}

// statusError carries an HTTP status and a structured JSON body through
// serveLimited's error path — how /ingest reports partial forest state
// alongside the error. A zero Code selects the default (400, or 504
// when the request budget expired).
type statusError struct {
	Code int
	Body any
	Err  error
}

func (e *statusError) Error() string { return e.Err.Error() }
func (e *statusError) Unwrap() error { return e.Err }

// serveLimited is the request harness shared by the shard Server and
// the Coordinator: it runs fn under the concurrency limiter and the
// per-request timeout, answering JSON. Waiting for a slot answers 503
// when the budget runs out first. fn runs synchronously on the handler
// goroutine (the request body must not be read past the handler's
// return); slow body reads observe the timeout through ctx — see
// ctxReader — and a fn error with the budget exhausted answers 504.
//
// Before writing an error response the unread remainder of the request
// body is drained (up to maxErrorDrain), so a failed request does not
// force the keep-alive connection closed under the next request.
// Timed-out requests skip the drain: their body is stalled and the
// connection is forfeit anyway.
func serveLimited(w http.ResponseWriter, r *http.Request, sem chan struct{}, timeout time.Duration, fn func(ctx context.Context) (any, error)) {
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		httpError(w, r, http.StatusServiceUnavailable, "server at capacity: %v", ctx.Err())
		return
	}
	defer func() { <-sem }()
	v, err := fn(ctx)
	if err != nil {
		if errors.Is(err, errHandled) {
			return
		}
		if ctx.Err() == nil {
			drainBody(r)
		}
		code := http.StatusBadRequest
		if ctx.Err() != nil {
			code = http.StatusGatewayTimeout
			err = fmt.Errorf("request timed out: %w", ctx.Err())
		}
		var se *statusError
		if errors.As(err, &se) {
			if se.Code != 0 {
				code = se.Code
			}
			writeJSONStatus(w, code, se.Body)
			return
		}
		httpError(w, r, code, "%v", err)
		return
	}
	writeJSON(w, v)
}

// drainBody discards the unread remainder of the request body, up to
// maxErrorDrain bytes. Without this, an error response with body bytes
// still in flight makes net/http close the connection (it only
// auto-discards small remainders), killing keep-alive for the client's
// next request.
func drainBody(r *http.Request) {
	_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, maxErrorDrain))
}

// ctxReader fails reads once ctx is done, so a stalled ingest body
// surfaces as a decode error within the request budget.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// healthzResponse is the /healthz body: liveness plus the served
// snapshot's provenance when snapshot serving is on.
type healthzResponse struct {
	Status        string `json:"status"`
	Trees         int64  `json:"trees"`
	Snapshot      bool   `json:"snapshot"`
	SnapshotTrees int64  `json:"snapshot_trees,omitempty"`
	SnapshotAgeMS int64  `json:"snapshot_age_ms,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		if err := json.NewEncoder(w).Encode(healthzResponse{Status: "draining"}); err != nil {
			// Status 503 is already on the wire; nothing recoverable.
			_ = err
		}
		return
	}
	resp := healthzResponse{Status: "ok", Trees: s.safe.TreesProcessed()}
	if trees, age, ok := s.safe.SnapshotStats(); ok {
		resp.Snapshot = true
		resp.SnapshotTrees = trees
		resp.SnapshotAgeMS = age.Milliseconds()
	}
	writeJSON(w, resp)
}

// windowResponse is the GET /window body: whether sliding-window
// serving is on and, if so, the full window section — policy, live
// ring, merged provenance and lifecycle counters. Mirrors GET /cluster
// as the mode's provenance endpoint; the coordinator decodes the same
// struct when aggregating shards.
type windowResponse struct {
	Role    string              `json:"role"`
	Enabled bool                `json:"enabled"`
	Window  *obs.WindowSnapshot `json:"window,omitempty"`
}

// handleWindow serves the sliding-window provenance. Like /stats it
// reads only published atomics, so it bypasses the request limiter.
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	resp := windowResponse{Role: s.opts.Role}
	if ws, ok := s.safe.WindowStats(); ok {
		resp.Enabled = true
		resp.Window = ws
	}
	writeJSON(w, resp)
}

// ingestResponse is the /ingest body: the synopsis tree count after the
// ingest completed.
type ingestResponse struct {
	Trees int64 `json:"trees"`
}

// ingestError is the /ingest JSON error body. A forest document that
// fails mid-stream leaves its already-applied trees in the synopsis
// (AddTree's per-tree commits are real state, not a rollback), so the
// client gets the applied count and a partial marker to reconcile.
type ingestError struct {
	Error        string `json:"error"`
	TreesApplied int64  `json:"trees_applied"`
	Partial      bool   `json:"partial"`
	TraceID      string `json:"trace_id,omitempty"`
}

// capReader tracks whether the wrapped http.MaxBytesReader tripped its
// limit, so the handler can answer 413 regardless of how the XML
// decoder wrapped the read error.
type capReader struct {
	r       io.Reader
	tripped bool
}

func (c *capReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			c.tripped = true
		}
	}
	return n, err
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	forest := r.URL.Query().Get("forest") != ""
	s.serve(w, r, func(ctx context.Context) (any, error) {
		rc := http.NewResponseController(w)
		if dl, ok := ctx.Deadline(); ok {
			// A stalled body read blocks inside the connection; the read
			// deadline interrupts it at the budget so the 504 is prompt.
			// Cleared on return — a leftover deadline would fail the next
			// request on this keep-alive connection.
			_ = rc.SetReadDeadline(dl)
			defer rc.SetReadDeadline(time.Time{})
		}
		var src io.Reader = r.Body
		var capr *capReader
		if s.opts.MaxIngestBody > 0 {
			capr = &capReader{r: http.MaxBytesReader(w, r.Body, s.opts.MaxIngestBody)}
			src = capr
		}
		body := &ctxReader{ctx: ctx, r: src}
		tr := trace.FromContext(ctx)
		var applied int64
		var err error
		if forest {
			// Forest parse and apply interleave per tree; one span
			// covers the whole stream (the parse/apply split lives in
			// the engine's stage timers).
			sp := tr.StartSpan("apply")
			applied, err = s.safe.AddXMLForestCount(body)
			tr.EndSpan(sp)
		} else {
			// Safe.AddXML is ParseXML + AddTree; splitting it here puts
			// a span boundary between decode and synopsis update.
			sp := tr.StartSpan("parse")
			var t *sketchtree.Tree
			t, err = sketchtree.ParseXML(body)
			tr.EndSpan(sp)
			if err == nil {
				sp = tr.StartSpan("apply")
				err = s.safe.AddTree(t)
				tr.EndSpan(sp)
			}
		}
		if err != nil {
			code := 0
			if capr != nil && capr.tripped {
				code = http.StatusRequestEntityTooLarge
				err = fmt.Errorf("request body exceeds %d bytes: %w", s.opts.MaxIngestBody, err)
			}
			if forest {
				return nil, &statusError{
					Code: code,
					Body: ingestError{Error: err.Error(), TreesApplied: applied, Partial: applied > 0, TraceID: tr.ID()},
					Err:  err,
				}
			}
			if code != 0 {
				return nil, &statusError{Code: code, Body: errorBody(ctx, err.Error()), Err: err}
			}
			return nil, err
		}
		return ingestResponse{Trees: s.safe.TreesProcessed()}, nil
	})
}

// handleSynopsis serves the synopsis in its serialized binary form —
// the pull half of the cluster's pull/merge protocol (see
// internal/cluster). The snapshot is taken under the read lock; like
// /stats it bypasses the request limiter so periodic coordinator pulls
// never compete with query traffic for slots.
func (s *Server) handleSynopsis(w http.ResponseWriter, r *http.Request) {
	tr := trace.FromContext(r.Context())
	sp := tr.StartSpan("marshal")
	data, err := s.safe.MarshalBinary()
	tr.EndSpan(sp)
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, "serializing synopsis: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Sketchtree-Trees", strconv.FormatInt(s.safe.TreesProcessed(), 10))
	if _, err := w.Write(data); err != nil {
		// The client went away mid-transfer; nothing recoverable.
		_ = err
	}
}

// queryRequest is the /query body. Kind selects the estimator; Pattern
// (kind ordered/unordered), Patterns (kind set) and Expr (kind
// expression) carry the query. Patterns are S-expressions ("(A (B))")
// or plain label paths ("A/B/C"). WithError adds the CI95 error bar
// (kinds ordered, unordered, set).
type queryRequest struct {
	Kind      string    `json:"kind"`
	Pattern   string    `json:"pattern,omitempty"`
	Patterns  []string  `json:"patterns,omitempty"`
	Expr      *exprNode `json:"expr,omitempty"`
	WithError bool      `json:"with_error,omitempty"`
}

// exprNode is one node of an expression query: op "count" with a
// pattern, or "add"/"sub"/"mul" with operands l and r.
type exprNode struct {
	Op      string    `json:"op"`
	Pattern string    `json:"pattern,omitempty"`
	L       *exprNode `json:"l,omitempty"`
	R       *exprNode `json:"r,omitempty"`
}

// queryResponse is the /query answer. Snapshot reports whether the Safe
// was in snapshot-serving mode (the answer then reflects the frozen
// synopsis of SnapshotTrees trees, not the live tail).
type queryResponse struct {
	Kind          string      `json:"kind"`
	Estimate      float64     `json:"estimate"`
	StdErr        *float64    `json:"std_err,omitempty"`
	CI95          *[2]float64 `json:"ci95,omitempty"`
	S1            int         `json:"s1,omitempty"`
	S2            int         `json:"s2,omitempty"`
	Snapshot      bool        `json:"snapshot"`
	SnapshotTrees int64       `json:"snapshot_trees,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.serve(w, r, func(ctx context.Context) (any, error) {
		var req queryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding request: %w", err)
		}
		resp, err := answerQuery(ctx, s.safe, &req, s.opts.Role)
		if err != nil {
			return nil, err
		}
		if trees, _, ok := s.safe.SnapshotStats(); ok {
			resp.Snapshot = true
			resp.SnapshotTrees = trees
		}
		return resp, nil
	})
}

// engine is the estimator surface the query path needs. Both
// *sketchtree.Safe (the shard's locked/snapshot path) and a frozen
// *sketchtree.SketchTree (the coordinator's merged synopsis) satisfy
// it, so one query handler serves both roles.
type engine interface {
	CountOrdered(q *sketchtree.Node) (float64, error)
	CountUnordered(q *sketchtree.Node) (float64, error)
	CountOrderedSet(qs []*sketchtree.Node) (float64, error)
	CountOrderedWithError(q *sketchtree.Node) (sketchtree.Estimate, error)
	CountUnorderedWithError(q *sketchtree.Node) (sketchtree.Estimate, error)
	CountOrderedSetWithError(qs []*sketchtree.Node) (sketchtree.Estimate, error)
	EstimateExpression(e sketchtree.Expr) (float64, error)
}

// answerQuery is the query path shared by the shard Server and the
// Coordinator, split into two traced phases: "plan" (JSON → validated
// pattern/expression) and "eval" (the estimator). Evaluation runs under
// pprof labels so CPU profiles segment by endpoint, role and pattern
// size.
func answerQuery(ctx context.Context, eng engine, req *queryRequest, role string) (*queryResponse, error) {
	tr := trace.FromContext(ctx)
	sp := tr.StartSpan("plan")
	b, err := buildQuery(req)
	tr.EndSpan(sp)
	if err != nil {
		return nil, err
	}
	sp = tr.StartSpan("eval")
	var resp *queryResponse
	pprof.Do(ctx, pprof.Labels(
		"endpoint", "/query", "role", role,
		"pattern_size", strconv.Itoa(b.patternEdges)), func(context.Context) {
		resp, err = b.evaluate(eng)
	})
	tr.EndSpan(sp)
	tr.Annotate("kind", req.Kind)
	return resp, err
}

// builtQuery is a parsed and validated query, ready to evaluate
// against any engine.
type builtQuery struct {
	kind      string
	withError bool
	q         *sketchtree.Node   // ordered / unordered
	qs        []*sketchtree.Node // set
	expr      sketchtree.Expr    // expression
	// patternEdges is the total pattern size in edges across the
	// query's patterns (0 for expressions) — the pprof workload label.
	patternEdges int
}

// buildQuery parses the request's patterns into a builtQuery. This is
// the query path's "plan" phase: everything that can fail with 400
// happens here, before any estimator work.
func buildQuery(req *queryRequest) (*builtQuery, error) {
	b := &builtQuery{kind: req.Kind, withError: req.WithError}
	switch req.Kind {
	case "ordered", "unordered":
		q, err := parsePattern(req.Pattern)
		if err != nil {
			return nil, err
		}
		b.q = q
		b.patternEdges = q.Size() - 1
		return b, nil
	case "set":
		if len(req.Patterns) == 0 {
			return nil, errors.New(`kind "set" needs a non-empty "patterns" list`)
		}
		b.qs = make([]*sketchtree.Node, len(req.Patterns))
		for i, p := range req.Patterns {
			q, err := parsePattern(p)
			if err != nil {
				return nil, fmt.Errorf("patterns[%d]: %w", i, err)
			}
			b.qs[i] = q
			b.patternEdges += q.Size() - 1
		}
		return b, nil
	case "expression":
		if req.WithError {
			return nil, errors.New("expression queries have no error bar")
		}
		e, err := buildExpr(req.Expr)
		if err != nil {
			return nil, err
		}
		b.expr = e
		return b, nil
	case "":
		return nil, errors.New(`missing "kind" (ordered, unordered, set or expression)`)
	default:
		return nil, fmt.Errorf("unknown kind %q (ordered, unordered, set or expression)", req.Kind)
	}
}

// evaluate runs the built query against eng. It cannot 400: every
// request-shape error was caught by buildQuery.
func (b *builtQuery) evaluate(eng engine) (*queryResponse, error) {
	resp := &queryResponse{Kind: b.kind}
	switch b.kind {
	case "ordered", "unordered":
		if b.withError {
			var est sketchtree.Estimate
			var err error
			if b.kind == "ordered" {
				est, err = eng.CountOrderedWithError(b.q)
			} else {
				est, err = eng.CountUnorderedWithError(b.q)
			}
			if err != nil {
				return nil, err
			}
			resp.withEstimate(est)
			return resp, nil
		}
		var v float64
		var err error
		if b.kind == "ordered" {
			v, err = eng.CountOrdered(b.q)
		} else {
			v, err = eng.CountUnordered(b.q)
		}
		if err != nil {
			return nil, err
		}
		resp.Estimate = v
		return resp, nil
	case "set":
		if b.withError {
			est, err := eng.CountOrderedSetWithError(b.qs)
			if err != nil {
				return nil, err
			}
			resp.withEstimate(est)
			return resp, nil
		}
		v, err := eng.CountOrderedSet(b.qs)
		if err != nil {
			return nil, err
		}
		resp.Estimate = v
		return resp, nil
	default: // "expression"; buildQuery rejected everything else
		v, err := eng.EstimateExpression(b.expr)
		if err != nil {
			return nil, err
		}
		resp.Estimate = v
		return resp, nil
	}
}

func (r *queryResponse) withEstimate(est sketchtree.Estimate) {
	r.Estimate = est.Value
	se, ci := est.StdErr, est.CI95
	r.StdErr, r.CI95 = &se, &ci
	r.S1, r.S2 = est.S1, est.S2
}

// buildExpr converts the JSON expression tree into a query expression.
func buildExpr(n *exprNode) (sketchtree.Expr, error) {
	if n == nil {
		return nil, errors.New(`kind "expression" needs an "expr" tree`)
	}
	switch n.Op {
	case "count":
		q, err := parsePattern(n.Pattern)
		if err != nil {
			return nil, err
		}
		return sketchtree.Count(q), nil
	case "add", "sub", "mul":
		l, err := buildExpr(n.L)
		if err != nil {
			return nil, fmt.Errorf("%s: l: %w", n.Op, err)
		}
		r, err := buildExpr(n.R)
		if err != nil {
			return nil, fmt.Errorf("%s: r: %w", n.Op, err)
		}
		switch n.Op {
		case "add":
			return sketchtree.Add(l, r), nil
		case "sub":
			return sketchtree.Sub(l, r), nil
		default:
			return sketchtree.Mul(l, r), nil
		}
	default:
		return nil, fmt.Errorf("unknown expr op %q (count, add, sub or mul)", n.Op)
	}
}

// parsePattern accepts a pattern as an S-expression ("(A (B) (C))") or
// a plain label path ("A/B/C"). Extended path syntax ('//', '*') needs
// the structural summary and is not served over HTTP.
func parsePattern(s string) (*sketchtree.Node, error) {
	if s == "" {
		return nil, errors.New("empty pattern")
	}
	if s[0] == '(' {
		return sketchtree.ParsePattern(s)
	}
	ext, err := sketchtree.ParsePath(s)
	if err != nil {
		return nil, err
	}
	return plainChain(ext)
}

// plainChain converts a non-extended path query into a plain pattern.
func plainChain(q *sketchtree.ExtQuery) (*sketchtree.Node, error) {
	if q.Desc || q.Label == sketchtree.Wildcard {
		return nil, errors.New("extended path queries ('//', '*') are not served over HTTP; use a plain path or S-expression")
	}
	n := sketchtree.Pattern(q.Label)
	for _, c := range q.Children {
		cn, err := plainChain(c)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, cn)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing recoverable to do.
		_ = err
	}
}

// httpError answers a JSON error body. Every error carries the
// request's trace ID (when tracing is on), so a client-reported
// failure joins against the flight recorder's record of it.
func httpError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	writeJSONStatus(w, code, errorBody(r.Context(), fmt.Sprintf(format, args...)))
}

// errorBody builds the standard JSON error body: the message plus the
// trace ID carried by ctx, if any.
func errorBody(ctx context.Context, msg string) map[string]string {
	b := map[string]string{"error": msg}
	if id := trace.FromContext(ctx).ID(); id != "" {
		b["trace_id"] = id
	}
	return b
}

// writeJSONStatus answers v as JSON under an explicit status code.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status is already on the wire; nothing recoverable.
		_ = err
	}
}
