package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"testing"
	"time"

	"sketchtree"
)

func testConfig() sketchtree.Config {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 50
	cfg.S2 = 5
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.Seed = 7
	return cfg
}

func newTestServer(t *testing.T, opts Options) (*sketchtree.Safe, *Server, *httptest.Server) {
	t.Helper()
	safe, err := sketchtree.NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		"<a><b/><c/></a>",
		"<a><b/><b/></a>",
		"<a><c/><b/></a>",
	}
	for _, d := range docs {
		if err := safe.AddXML(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(safe, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return safe, srv, ts
}

func postQuery(t *testing.T, url string, req any) (*http.Response, queryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, qr
}

func TestQueryKinds(t *testing.T) {
	_, _, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		req  queryRequest
		want float64 // exact count; the estimate must land within ±2
	}{
		{"ordered sexp", queryRequest{Kind: "ordered", Pattern: "(a (b))"}, 4},
		{"ordered path", queryRequest{Kind: "ordered", Pattern: "a/b"}, 4},
		{"unordered", queryRequest{Kind: "unordered", Pattern: "(a (b) (c))"}, 2},
		{"set", queryRequest{Kind: "set", Patterns: []string{"a/b", "a/c"}}, 6},
		{"expression", queryRequest{Kind: "expression", Expr: &exprNode{
			Op: "add",
			L:  &exprNode{Op: "count", Pattern: "a/b"},
			R:  &exprNode{Op: "count", Pattern: "a/c"},
		}}, 6},
		{"expression sub", queryRequest{Kind: "expression", Expr: &exprNode{
			Op: "sub",
			L:  &exprNode{Op: "count", Pattern: "a/b"},
			R:  &exprNode{Op: "count", Pattern: "a/c"},
		}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, qr := postQuery(t, ts.URL, tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if qr.Kind != tc.req.Kind {
				t.Errorf("kind %q, want %q", qr.Kind, tc.req.Kind)
			}
			if qr.Estimate < tc.want-2 || qr.Estimate > tc.want+2 {
				t.Errorf("estimate %v, want ≈ %v", qr.Estimate, tc.want)
			}
			if qr.Snapshot {
				t.Error("snapshot flag set without snapshot serving")
			}
		})
	}
}

func TestQueryWithError(t *testing.T) {
	_, _, ts := newTestServer(t, Options{})
	resp, qr := postQuery(t, ts.URL, queryRequest{Kind: "ordered", Pattern: "a/b", WithError: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if qr.StdErr == nil || qr.CI95 == nil {
		t.Fatalf("missing error bar: %+v", qr)
	}
	if qr.CI95[0] > qr.Estimate || qr.CI95[1] < qr.Estimate {
		t.Errorf("estimate %v outside its own CI95 %v", qr.Estimate, *qr.CI95)
	}
	if qr.S1 != 50 || qr.S2 != 5 {
		t.Errorf("s1/s2 = %d/%d, want 50/5", qr.S1, qr.S2)
	}
}

func TestQueryBadRequests(t *testing.T) {
	_, _, ts := newTestServer(t, Options{})
	bad := []queryRequest{
		{},                                  // missing kind
		{Kind: "bogus"},                     // unknown kind
		{Kind: "ordered", Pattern: ""},      // empty pattern
		{Kind: "ordered", Pattern: "(a (b"}, // unbalanced S-expression
		{Kind: "ordered", Pattern: "a//b"},  // extended path
		{Kind: "ordered", Pattern: "a/*"},   // wildcard path
		{Kind: "set"},                       // empty set
		{Kind: "expression"},                // missing expr
		{Kind: "expression", Expr: &exprNode{Op: "div"}}, // unknown op
		{Kind: "expression", Expr: &exprNode{Op: "add"}}, // missing operands
		{Kind: "expression", WithError: true, Expr: &exprNode{Op: "count", Pattern: "a/b"}},
	}
	for i, req := range bad {
		resp, _ := postQuery(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad[%d] %+v: status %d, want 400", i, req, resp.StatusCode)
		}
	}
	// Unknown fields are rejected too (catches client typos).
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"kind":"ordered","pattren":"a/b"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestIngestEndpoint(t *testing.T) {
	safe, _, ts := newTestServer(t, Options{})
	before := safe.TreesProcessed()
	resp, err := http.Post(ts.URL+"/ingest", "application/xml",
		strings.NewReader("<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Trees != before+1 {
		t.Fatalf("single ingest: status %d, trees %d (want %d)", resp.StatusCode, ir.Trees, before+1)
	}
	resp, err = http.Post(ts.URL+"/ingest?forest=1", "application/xml",
		strings.NewReader("<forest><a><b/></a><a><c/></a><a><b/><c/></a></forest>"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Trees != before+4 {
		t.Fatalf("forest ingest: status %d, trees %d (want %d)", resp.StatusCode, ir.Trees, before+4)
	}
	// Malformed XML is a client error.
	resp, err = http.Post(ts.URL+"/ingest", "application/xml", strings.NewReader("<a><b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed ingest: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAndObservability(t *testing.T) {
	safe, _, ts := newTestServer(t, Options{})
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}
	resp, body := get("/healthz")
	var hz healthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.Trees != 3 || hz.Snapshot {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hz)
	}
	if err := safe.EnableSnapshots(sketchtree.SnapshotPolicy{EveryTrees: 10}); err != nil {
		t.Fatal(err)
	}
	defer safe.DisableSnapshots()
	_, body = get("/healthz")
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if !hz.Snapshot || hz.SnapshotTrees != 3 {
		t.Fatalf("healthz after EnableSnapshots: %+v", hz)
	}
	// Queries now carry snapshot provenance.
	_, qr := postQuery(t, ts.URL, queryRequest{Kind: "ordered", Pattern: "a/b"})
	if !qr.Snapshot || qr.SnapshotTrees != 3 {
		t.Fatalf("query snapshot provenance: %+v", qr)
	}

	resp, body = get("/stats")
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("/stats: %d, valid JSON = %v", resp.StatusCode, json.Valid(body))
	}
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "sketchtree_trees_total") {
		t.Fatalf("/metrics: %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "sketchtree_plan_cache_hits_total") {
		t.Error("/metrics missing plan-cache counters")
	}
}

// TestLimiterSaturated fills the single request slot directly and
// checks a query gives up waiting with 503 within its budget, then
// succeeds once the slot frees.
func TestLimiterSaturated(t *testing.T) {
	_, srv, ts := newTestServer(t, Options{MaxConcurrent: 1, Timeout: 100 * time.Millisecond})
	srv.sem <- struct{}{} // occupy the only slot
	resp, _ := postQuery(t, ts.URL, queryRequest{Kind: "ordered", Pattern: "a/b"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while saturated: status %d, want 503", resp.StatusCode)
	}
	<-srv.sem
	resp, _ = postQuery(t, ts.URL, queryRequest{Kind: "ordered", Pattern: "a/b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after slot freed: status %d, want 200", resp.StatusCode)
	}
}

// TestIngestTimeout stalls an ingest body mid-document and checks the
// request answers 504 at its budget rather than hanging, and that the
// slot frees for later requests.
func TestIngestTimeout(t *testing.T) {
	_, _, ts := newTestServer(t, Options{MaxConcurrent: 1, Timeout: 200 * time.Millisecond})
	pr, pw := io.Pipe()
	ingestDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/ingest", "application/xml", pr)
		if err != nil {
			t.Logf("ingest transport error: %v", err)
			ingestDone <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ingestDone <- resp
	}()
	// The write is accepted only once the handler is parsing the body,
	// so the handler provably holds the slot; then the body stalls.
	if _, err := pw.Write([]byte("<a><b/>")); err != nil {
		t.Fatal(err)
	}
	ingest := <-ingestDone
	pw.CloseWithError(fmt.Errorf("test: abandon ingest"))
	if ingest == nil {
		t.Fatal("ingest request failed at transport level")
	}
	if ingest.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled ingest: status %d, want 504", ingest.StatusCode)
	}
	// The slot was released with the response.
	resp, _ := postQuery(t, ts.URL, queryRequest{Kind: "ordered", Pattern: "a/b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after timeout: status %d, want 200", resp.StatusCode)
	}
}

// TestIngestBodyCap checks /ingest rejects oversized bodies with 413
// instead of streaming them unbounded into the synopsis (pre-fix the
// same request ingested fine and answered 200).
func TestIngestBodyCap(t *testing.T) {
	safe, _, ts := newTestServer(t, Options{MaxIngestBody: 1024})
	before := safe.TreesProcessed()
	var b strings.Builder
	b.WriteString("<a>")
	for b.Len() < 4096 {
		b.WriteString("<b/>")
	}
	b.WriteString("</a>")
	resp, err := http.Post(ts.URL+"/ingest", "application/xml", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d, want 413: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body not a JSON error: %s", body)
	}
	if got := safe.TreesProcessed(); got != before {
		t.Errorf("oversized ingest applied state: %d trees, want %d", got, before)
	}
	// A body under the cap still ingests.
	resp, err = http.Post(ts.URL+"/ingest", "application/xml", strings.NewReader("<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest after cap: status %d, want 200", resp.StatusCode)
	}
}

// TestForestPartialIngestError aborts a forest mid-document and checks
// the error body reports the applied prefix: AddTree commits per tree,
// so the applied trees are real synopsis state the client must be able
// to reconcile (pre-fix the error body had no applied count).
func TestForestPartialIngestError(t *testing.T) {
	safe, _, ts := newTestServer(t, Options{})
	before := safe.TreesProcessed()
	// Two complete trees, then a document truncated mid-stream.
	resp, err := http.Post(ts.URL+"/ingest?forest=1", "application/xml",
		strings.NewReader("<forest><a><b/></a><a><c/></a><a><b/>"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("aborted forest: status %d, want 400: %s", resp.StatusCode, body)
	}
	var e struct {
		Error        string `json:"error"`
		TreesApplied int64  `json:"trees_applied"`
		Partial      bool   `json:"partial"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error body %q: %v", body, err)
	}
	if e.Error == "" || e.TreesApplied != 2 || !e.Partial {
		t.Fatalf("error body %+v, want trees_applied=2 partial=true", e)
	}
	if got := safe.TreesProcessed(); got != before+2 {
		t.Errorf("synopsis has %d trees, want %d (the applied prefix)", got, before+2)
	}
	// A forest that fails before any tree applies is not partial.
	resp, err = http.Post(ts.URL+"/ingest?forest=1", "application/xml",
		strings.NewReader("<forest><a><b/>"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error body %q: %v", body, err)
	}
	if e.TreesApplied != 0 || e.Partial {
		t.Errorf("empty-prefix abort: %+v, want trees_applied=0 partial=false", e)
	}
}

// TestErrorResponseKeepsConnectionAlive sends a failing ingest with a
// large unread remainder, then a healthy request on the same
// connection. Pre-fix the handler returned without draining the body;
// with ~512 KiB left unread net/http gives up (its auto-discard stops
// at 256 KiB) and closes the keep-alive connection.
func TestErrorResponseKeepsConnectionAlive(t *testing.T) {
	_, _, ts := newTestServer(t, Options{})
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	// Malformed XML up front: the decoder fails within its first buffer,
	// leaving the ~512 KiB remainder unread by the handler.
	bad := "<a><b></a>" + strings.Repeat(" ", 512<<10)
	resp, err := client.Post(ts.URL+"/ingest", "application/xml", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: status %d, want 400", resp.StatusCode)
	}
	if resp.Close {
		t.Fatal("server closed the keep-alive connection after the failed request")
	}

	// The next request must reuse the same connection.
	var reused bool
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) { reused = info.Reused },
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request: status %d, want 200", resp.StatusCode)
	}
	if !reused {
		t.Error("follow-up request did not reuse the connection")
	}
}

// TestIngestClearsReadDeadline checks a timed ingest does not leave its
// read deadline armed on the keep-alive connection: a later request on
// the same connection, arriving after the first request's deadline has
// passed, must still be served.
func TestIngestClearsReadDeadline(t *testing.T) {
	_, _, ts := newTestServer(t, Options{Timeout: 250 * time.Millisecond})
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	resp, err := client.Post(ts.URL+"/ingest", "application/xml", strings.NewReader("<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d, want 200", resp.StatusCode)
	}
	// Wait out the first request's deadline, then reuse the connection.
	time.Sleep(400 * time.Millisecond)
	resp, err = client.Post(ts.URL+"/ingest", "application/xml", strings.NewReader("<a><c/></a>"))
	if err != nil {
		t.Fatalf("second ingest on reused connection: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest: status %d, want 200", resp.StatusCode)
	}
}

// TestSynopsisEndpoint pulls the serialized synopsis and checks a
// restored engine answers bit-identically — the shard half of the
// cluster pull/merge protocol.
func TestSynopsisEndpoint(t *testing.T) {
	safe, _, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/synopsis")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/synopsis: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Sketchtree-Trees"); got != "3" {
		t.Errorf("X-Sketchtree-Trees = %q, want 3", got)
	}
	st, err := sketchtree.Restore(data)
	if err != nil {
		t.Fatalf("restoring pulled synopsis: %v", err)
	}
	if st.TreesProcessed() != 3 {
		t.Errorf("restored trees = %d, want 3", st.TreesProcessed())
	}
	q, err := sketchtree.ParsePattern("(a (b))")
	if err != nil {
		t.Fatal(err)
	}
	want, err := safe.CountOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.CountOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("restored estimate %v != live %v", got, want)
	}
}
