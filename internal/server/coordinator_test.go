package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sketchtree"
	"sketchtree/internal/cluster"
	"sketchtree/internal/obs"
)

// testCluster is an in-process cluster: n shard daemons behind
// httptest servers, a puller over them, and the coordinator's own
// httptest server. Pulls only happen through PullNow (the pull period
// is set far beyond the test's lifetime), so every test controls
// exactly what the coordinator has merged.
type testCluster struct {
	shards  []*sketchtree.Safe
	servers []*httptest.Server
	puller  *cluster.Puller
	met     *obs.ClusterMetrics
	co      *Coordinator
	ts      *httptest.Server
}

func newTestCluster(t *testing.T, n int, opts Options) *testCluster {
	t.Helper()
	tc := &testCluster{met: obs.NewClusterMetrics(n)}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		safe, err := sketchtree.NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv := New(safe, Options{})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		tc.shards = append(tc.shards, safe)
		tc.servers = append(tc.servers, ts)
		urls[i] = ts.URL
	}
	puller, err := cluster.New(cluster.Config{
		Shards:      urls,
		PullEvery:   time.Hour,
		PullTimeout: 5 * time.Second,
		Metrics:     tc.met,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.puller = puller
	fallback, err := sketchtree.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tc.co = NewCoordinator(puller, fallback, tc.met, opts)
	tc.ts = httptest.NewServer(tc.co.Handler())
	t.Cleanup(tc.ts.Close)
	return tc
}

// ingest posts one document through the coordinator and returns the
// response (body drained and closed for non-200 handling by callers).
func (tc *testCluster) ingest(t *testing.T, doc string) *http.Response {
	t.Helper()
	resp, err := http.Post(tc.ts.URL+"/ingest", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// clusterDocs is a corpus whose FNV routing spreads across small
// shard counts: distinct child labels vary the hash.
func clusterDocs(n int) []string {
	docs := make([]string, n)
	labels := []string{"b", "c", "d", "e", "f", "g"}
	for i := range docs {
		docs[i] = "<a><" + labels[i%len(labels)] + "/><" + labels[(i/len(labels))%len(labels)] + "/></a>"
	}
	return docs
}

func TestRoutedIngestMergedQueryMatchesSingleNode(t *testing.T) {
	tc := newTestCluster(t, 3, Options{})
	docs := clusterDocs(36)

	// Reference: a single-node engine fed the same corpus in order.
	ref, err := sketchtree.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		tr, err := sketchtree.ParseXML(strings.NewReader(d))
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.AddTree(tr); err != nil {
			t.Fatal(err)
		}
		resp := tc.ingest(t, d)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed ingest: status %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Sketchtree-Shard") == "" {
			t.Fatal("routed ingest response missing X-Sketchtree-Shard")
		}
	}

	// Every shard must own at least one document, or the test is not
	// exercising a real merge.
	var spread int
	for i, sh := range tc.shards {
		if n := sh.TreesProcessed(); n > 0 {
			spread++
			t.Logf("shard %d: %d trees", i, n)
		}
	}
	if spread < 2 {
		t.Fatalf("corpus routed to %d shard(s); need at least 2 for a meaningful merge", spread)
	}

	if err := tc.puller.PullNow(context.Background()); err != nil {
		t.Fatalf("PullNow: %v", err)
	}
	sv := tc.puller.Serving()
	if sv == nil {
		t.Fatal("no merged serving state after PullNow")
	}
	if sv.Trees != int64(len(docs)) {
		t.Fatalf("merged trees = %d, want %d", sv.Trees, len(docs))
	}

	// Bit-determinism: the merged synopsis answers exactly as the
	// single-node engine, for point, with-error and expression queries.
	queries := []queryRequest{
		{Kind: "ordered", Pattern: "(a (b))"},
		{Kind: "unordered", Pattern: "(a (c) (b))"},
		{Kind: "ordered", Pattern: "(a (b) (c))", WithError: true},
		{Kind: "expression", Expr: &exprNode{Op: "add",
			L: &exprNode{Op: "count", Pattern: "(a (d))"},
			R: &exprNode{Op: "count", Pattern: "(a (e))"}}},
	}
	for _, q := range queries {
		resp, got := postQuery(t, tc.ts.URL, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %+v: status %d", q, resp.StatusCode)
		}
		if !got.Snapshot || got.SnapshotTrees != int64(len(docs)) {
			t.Errorf("query %+v: snapshot provenance %v/%d, want true/%d",
				q, got.Snapshot, got.SnapshotTrees, len(docs))
		}
		want, err := answerQuery(context.Background(), ref, &q, "test")
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want.Estimate {
			t.Errorf("query %+v: merged estimate %v, single-node %v (must be bit-identical)",
				q, got.Estimate, want.Estimate)
		}
		if q.WithError {
			if got.StdErr == nil || want.StdErr == nil || *got.StdErr != *want.StdErr {
				t.Errorf("query %+v: merged stderr %v, single-node %v", q, got.StdErr, want.StdErr)
			}
		}
	}
}

func TestShardDownDegradesToStaleSlice(t *testing.T) {
	tc := newTestCluster(t, 3, Options{})
	for _, d := range clusterDocs(24) {
		resp := tc.ingest(t, d)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err := tc.puller.PullNow(context.Background()); err != nil {
		t.Fatalf("PullNow: %v", err)
	}
	q := queryRequest{Kind: "ordered", Pattern: "(a (b))"}
	resp, before := postQuery(t, tc.ts.URL, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query before shard loss: status %d", resp.StatusCode)
	}

	// Kill shard 1; the next pull round must fail for it but keep its
	// last pulled synopsis in the merge.
	tc.servers[1].Close()
	if err := tc.puller.PullNow(context.Background()); err == nil {
		t.Fatal("PullNow with a dead shard returned nil error")
	}
	status := tc.puller.Status()
	if status[1].Reachable || !status[1].Stale || status[1].ConsecutiveFailures == 0 {
		t.Fatalf("dead shard status %+v, want unreachable, stale, failures > 0", status[1])
	}
	if !status[0].Reachable || !status[2].Reachable {
		t.Fatalf("live shards misreported: %+v / %+v", status[0], status[2])
	}

	// /query stays 200 and bit-identical: the dead shard's slice is
	// frozen, not dropped.
	resp, after := postQuery(t, tc.ts.URL, q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after shard loss: status %d, want 200", resp.StatusCode)
	}
	if after.Estimate != before.Estimate {
		t.Errorf("estimate changed across shard loss: %v -> %v", before.Estimate, after.Estimate)
	}

	// GET /cluster reports the degradation.
	hresp, err := http.Get(tc.ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs clusterResponse
	if err := json.NewDecoder(hresp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if cs.Role != "coordinator" || cs.Merged == nil || cs.Fallback {
		t.Fatalf("/cluster = %+v, want coordinator with merged state", cs)
	}
	if cs.Shards[1].Reachable || !cs.Shards[1].Stale {
		t.Errorf("/cluster shard 1 = %+v, want unreachable and stale", cs.Shards[1])
	}
	if len(cs.Pulls) != 3 || cs.Pulls[1].PullFailures == 0 {
		t.Errorf("/cluster pulls = %+v, want 3 shards with failures on shard 1", cs.Pulls)
	}
}

func TestRoutedIngestToDeadShard(t *testing.T) {
	tc := newTestCluster(t, 2, Options{})
	// Find a document routing to shard 0, then kill that shard.
	docs := clusterDocs(12)
	var doc string
	for _, d := range docs {
		if tc.puller.Route([]byte(d)) == 0 {
			doc = d
			break
		}
	}
	if doc == "" {
		t.Fatal("no document routed to shard 0")
	}
	tc.servers[0].Close()
	resp := tc.ingest(t, doc)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("ingest to dead shard: status %d, want 502: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
		Shard *int   `json:"shard"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" || e.Shard == nil || *e.Shard != 0 {
		t.Fatalf("502 body %q, want JSON error naming shard 0", body)
	}
}

func TestCoordinatorIngestBodyCap(t *testing.T) {
	tc := newTestCluster(t, 2, Options{MaxIngestBody: 512})
	resp := tc.ingest(t, "<a>"+strings.Repeat("<b/>", 1024)+"</a>")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized routed ingest: status %d, want 413: %s", resp.StatusCode, body)
	}
	for i, sh := range tc.shards {
		if n := sh.TreesProcessed(); n != 0 {
			t.Errorf("shard %d ingested %d trees from a capped request", i, n)
		}
	}
}

func TestCoordinatorRelaysPartialForestError(t *testing.T) {
	tc := newTestCluster(t, 2, Options{})
	body, err := http.Post(tc.ts.URL+"/ingest?forest=1", "application/xml",
		strings.NewReader("<forest><a><b/></a><a><c/></a><a><b/>"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(body.Body)
	body.Body.Close()
	if body.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial forest through coordinator: status %d: %s", body.StatusCode, raw)
	}
	var e struct {
		TreesApplied int64 `json:"trees_applied"`
		Partial      bool  `json:"partial"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || e.TreesApplied != 2 || !e.Partial {
		t.Fatalf("relayed error body %q, want trees_applied=2 partial=true", raw)
	}
}

func TestFreshQueryPullsBeforeAnswering(t *testing.T) {
	tc := newTestCluster(t, 2, Options{})
	resp := tc.ingest(t, "<a><b/><c/></a>")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Without ?fresh=1 the coordinator has never pulled: fallback, zero.
	q := queryRequest{Kind: "ordered", Pattern: "(a (b))"}
	hresp, stale := postQuery(t, tc.ts.URL, q)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("fallback query: status %d", hresp.StatusCode)
	}
	if stale.Snapshot {
		t.Fatal("query before any pull claimed merged provenance")
	}

	body, _ := json.Marshal(q)
	fresh, err := http.Post(tc.ts.URL+"/query?fresh=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got queryResponse
	if err := json.NewDecoder(fresh.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	fresh.Body.Close()
	if !got.Snapshot || got.SnapshotTrees != 1 {
		t.Fatalf("?fresh=1 answer %+v, want merged provenance over 1 tree", got)
	}
	if got.Estimate == stale.Estimate {
		t.Fatalf("?fresh=1 estimate %v did not move off the empty fallback", got.Estimate)
	}
}

func TestCoordinatorMetricsEndpoint(t *testing.T) {
	tc := newTestCluster(t, 2, Options{})
	resp := tc.ingest(t, "<a><b/></a>")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := tc.puller.PullNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	mresp, err := http.Get(tc.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"sketchtree_cluster_pulls_total",
		"sketchtree_cluster_pull_seconds_total",
		"sketchtree_cluster_routed_total",
	} {
		if !strings.Contains(string(prom), family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(string(prom), `shard="1"`) {
		t.Error(`/metrics missing per-shard label shard="1"`)
	}
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func waitForOK(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}

func TestCoordinatorRunDrains(t *testing.T) {
	tc := newTestCluster(t, 2, Options{DrainTimeout: 2 * time.Second})
	// Run on a fresh listener (tc.ts serves the same handler; Run owns
	// the pull loop and drain path under test here).
	ln := newLocalListener(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tc.co.Run(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	waitForOK(t, url+"/healthz")
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not drain")
	}
	if !tc.co.Draining() {
		t.Error("Draining() false after shutdown")
	}
}
