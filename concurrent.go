package sketchtree

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"sketchtree/internal/obs"
	"sketchtree/internal/window"
)

// Safe wraps a SketchTree for concurrent use: updates take the write
// lock, queries the read lock. Queries are pure reads of the synopsis,
// so any number may run concurrently between updates.
//
// EnableSnapshots switches the Count*/Estimate* reads to a lock-free
// snapshot-isolated path — see SnapshotPolicy.
//
// The zero Safe is not valid; construct with NewSafe.
type Safe struct {
	mu sync.RWMutex
	st *SketchTree

	// Snapshot serving (see snapshot.go). snap is the published frozen
	// synopsis; snapEvery doubles as the enabled flag (0 = off) and the
	// refresh interval; updatesSince counts updates since the last
	// refresh; snapMu serializes Enable/Disable; snapStop/snapDone
	// bracket the MaxAge refresher goroutine.
	snap         atomic.Pointer[snapState]
	snapEvery    atomic.Int64
	updatesSince atomic.Int64
	snapMu       sync.Mutex
	snapStop     chan struct{}
	snapDone     chan struct{}

	// Sliding-window serving (see window.go). win is non-nil while the
	// window is enabled: updates route into its slice ring and reads
	// into its published merged engine. winServing caches the SketchTree
	// wrapper per published generation; winMu serializes
	// Enable/Disable; winStop/winDone bracket the clock-cadence
	// advancer goroutine.
	win        atomic.Pointer[window.Windowed]
	winServing atomic.Pointer[winServing]
	winMu      sync.Mutex
	winStop    chan struct{}
	winDone    chan struct{}
}

// NewSafe creates a concurrency-safe SketchTree.
func NewSafe(cfg Config) (*Safe, error) {
	st, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Safe{st: st}, nil
}

// RestoreSafe reconstructs a concurrency-safe SketchTree from
// MarshalBinary output.
func RestoreSafe(data []byte) (*Safe, error) {
	st, err := Restore(data)
	if err != nil {
		return nil, err
	}
	return &Safe{st: st}, nil
}

// AddTree folds one tree into the synopsis (into the current window
// slice while the window is enabled).
func (s *Safe) AddTree(t *Tree) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.win.Load(); w != nil {
		return w.Add(t)
	}
	if err := s.st.AddTree(t); err != nil {
		return err
	}
	s.noteUpdateLocked()
	return nil
}

// RemoveTree deletes one earlier occurrence of the tree (from the
// current window slice while the window is enabled — a document that
// has rotated into an older slice leaves by expiry, not deletion).
func (s *Safe) RemoveTree(t *Tree) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.win.Load(); w != nil {
		return w.Remove(t)
	}
	if err := s.st.RemoveTree(t); err != nil {
		return err
	}
	s.noteUpdateLocked()
	return nil
}

// AddXML parses one XML document (outside the lock) and folds it into
// the synopsis under the write lock.
func (s *Safe) AddXML(r io.Reader) error {
	t, err := ParseXML(r)
	if err != nil {
		return err
	}
	return s.AddTree(t)
}

// AddXMLForest streams every tree of a rooted XML forest document into
// the synopsis. The write lock is taken per tree, so queries and other
// updates interleave with a long-running forest load; the forest is
// not applied atomically.
func (s *Safe) AddXMLForest(r io.Reader) error {
	_, err := s.AddXMLForestCount(r)
	return err
}

// AddXMLForestCount is AddXMLForest reporting how many trees were
// applied before any error. Because the forest is committed tree by
// tree, a mid-stream failure leaves the applied prefix in the synopsis
// — the count is the client's reconciliation contract (see the
// /ingest?forest=1 error body in internal/server).
func (s *Safe) AddXMLForestCount(r io.Reader) (int64, error) {
	var applied int64
	err := streamForestTimed(s.ingestMetrics(), r, func(t *Tree) error {
		if err := s.AddTree(t); err != nil {
			return err
		}
		applied++
		return nil
	})
	return applied, err
}

// ingestMetrics returns the sink producers should attribute parse time
// to: the window's persistent serving metrics while the window is
// enabled, the live engine's otherwise. Both are atomic counter
// blocks, never mutable sketch state, so no lock is needed.
func (s *Safe) ingestMetrics() *obs.Metrics {
	if w := s.win.Load(); w != nil {
		return w.Metrics()
	}
	return s.st.e.Metrics()
}

// EnableMetrics switches stage timers and query-latency measurement on
// or off (see SketchTree.EnableMetrics).
func (s *Safe) EnableMetrics(on bool) {
	// The metrics flag is itself atomic; no lock needed.
	//lint:allow lockdiscipline EnableMetrics only flips the obs layer's atomic flag; taking s.mu would stall behind long updates for nothing
	s.st.EnableMetrics(on)
	if w := s.win.Load(); w != nil {
		w.EnableTimers(on)
	}
}

// Stats reads the observability snapshot (the merged window engine's,
// with the Window section attached, while the window is enabled). The
// counters are atomics, so no lock is taken: Stats never blocks behind
// a long update.
func (s *Safe) Stats() Stats {
	if w := s.win.Load(); w != nil {
		return w.Stats()
	}
	//lint:allow lockdiscipline Stats reads only the obs layer's atomic counters; lock-freedom is the documented point of the method
	return s.st.Stats()
}

// Merge folds a plain SketchTree's synopsis into this one under the
// write lock — the fan-in half of parallel ingestion (see Ingestor and
// SketchTree.Merge for the preconditions: identical Config including
// Seed, top-k tracking disabled on both operands). The operand is only
// read, but it is not locked: it must not be mutated concurrently.
func (s *Safe) Merge(o *SketchTree) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.win.Load(); w != nil {
		return w.Absorb(o.e)
	}
	if err := s.st.Merge(o); err != nil {
		return err
	}
	s.noteUpdateLocked()
	return nil
}

// CountOrdered estimates COUNT_ord(Q).
func (s *Safe) CountOrdered(q *Node) (float64, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountOrdered(q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountOrdered(q)
}

// CountUnordered estimates COUNT(Q).
func (s *Safe) CountUnordered(q *Node) (float64, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountUnordered(q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountUnordered(q)
}

// CountOrderedSet estimates the total frequency of distinct patterns.
func (s *Safe) CountOrderedSet(qs []*Node) (float64, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountOrderedSet(qs)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountOrderedSet(qs)
}

// CountOrderedWithError is CountOrdered with an error bar.
func (s *Safe) CountOrderedWithError(q *Node) (Estimate, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountOrderedWithError(q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountOrderedWithError(q)
}

// CountUnorderedWithError is CountUnordered with an error bar.
func (s *Safe) CountUnorderedWithError(q *Node) (Estimate, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountUnorderedWithError(q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountUnorderedWithError(q)
}

// CountOrderedSetWithError is CountOrderedSet with an error bar.
func (s *Safe) CountOrderedSetWithError(qs []*Node) (Estimate, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountOrderedSetWithError(qs)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountOrderedSetWithError(qs)
}

// HealthReport diagnoses the synopsis under the read lock (it reads
// the sketch counters, unlike the lock-free Stats). While the window
// is enabled it diagnoses the published merged engine, lock-free (the
// merge is frozen).
func (s *Safe) HealthReport() HealthReport {
	if w := s.win.Load(); w != nil {
		return w.HealthReport()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.HealthReport()
}

// EnableAudit attaches the exact-shadow auditor; must run before any
// tree is added, and is mutually exclusive with window serving (the
// auditor's sample has no well-defined union across slices).
func (s *Safe) EnableAudit(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.win.Load() != nil {
		return fmt.Errorf("sketchtree: audit and window serving are mutually exclusive")
	}
	return s.st.EnableAudit(k)
}

// AuditEnabled reports whether the exact-shadow auditor is attached.
func (s *Safe) AuditEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.AuditEnabled()
}

// AuditReport scores the audited sample against the live sketch under
// the read lock.
func (s *Safe) AuditReport() (AuditReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.AuditReport()
}

// EstimateExpression estimates a +, −, × expression over counts.
func (s *Safe) EstimateExpression(e Expr) (float64, error) {
	if st := s.snapshotTree(); st != nil {
		return st.EstimateExpression(e)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.EstimateExpression(e)
}

// CountExtended estimates a wildcard/descendant query.
func (s *Safe) CountExtended(q *ExtQuery) (float64, bool, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountExtended(q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountExtended(q)
}

// TreesProcessed returns the number of trees folded in (live inside
// the window, while the window is enabled).
func (s *Safe) TreesProcessed() int64 {
	if w := s.win.Load(); w != nil {
		return w.Trees()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.TreesProcessed()
}

// PatternsProcessed returns the one-dimensional stream length (live
// inside the window, while the window is enabled).
func (s *Safe) PatternsProcessed() int64 {
	if w := s.win.Load(); w != nil {
		return w.Patterns()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.PatternsProcessed()
}

// MemoryBytes reports the synopsis footprint (the merged window
// engine's, while the window is enabled; each live slice adds roughly
// the same again).
func (s *Safe) MemoryBytes() Memory {
	if w := s.win.Load(); w != nil {
		return w.MemoryBytes()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.MemoryBytes()
}

// FrequentPatterns returns the tracked heavy hitters.
func (s *Safe) FrequentPatterns() []FrequentPattern {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.FrequentPatterns()
}

// CountAlternatives estimates a pattern with '|'-separated label
// alternatives.
func (s *Safe) CountAlternatives(q *Node) (float64, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountAlternatives(q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountAlternatives(q)
}

// CountOrderedUpperBound bounds COUNT_ord(Q) for patterns larger than
// Config.MaxPatternEdges.
func (s *Safe) CountOrderedUpperBound(q *Node) (float64, error) {
	if st := s.snapshotTree(); st != nil {
		return st.CountOrderedUpperBound(q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.CountOrderedUpperBound(q)
}

// EstimateSelfJoinSize estimates SJ(S) = Σ f² of the pattern stream.
func (s *Safe) EstimateSelfJoinSize(compensated bool) float64 {
	if st := s.snapshotTree(); st != nil {
		return st.EstimateSelfJoinSize(compensated)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.EstimateSelfJoinSize(compensated)
}

// Config returns the effective (normalized) configuration.
func (s *Safe) Config() Config {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.Config()
}

// MarshalBinary serializes the synopsis under the read lock. While the
// window is enabled it serializes the published merged window,
// lock-free — the windowed shard's half of the cluster pull protocol,
// trailing the live ring by at most the rebuild cadence.
func (s *Safe) MarshalBinary() ([]byte, error) {
	if w := s.win.Load(); w != nil {
		return w.MarshalBinary()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.MarshalBinary()
}

// Save writes the serialized synopsis to w. The snapshot is taken
// under the read lock; the write to w happens outside it, so a slow
// writer does not block updates.
func (s *Safe) Save(w io.Writer) error {
	data, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
