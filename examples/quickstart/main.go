// Quickstart: stream a handful of XML documents into a SketchTree
// synopsis and ask for ordered, unordered, and wildcard pattern
// counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"sketchtree"
)

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3 // enumerate patterns with up to 3 edges
	cfg.S1 = 50             // accuracy knob (Theorem 1)
	cfg.BuildSummary = true // enable '//' and '*' queries
	st, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A small stream of orders. In production this would be a feed of
	// documents read with AddXML / AddXMLForest.
	docs := []string{
		"<order><customer/><item><sku/><qty/></item><item><sku/></item></order>",
		"<order><customer/><item><sku/></item></order>",
		"<order><item><sku/><qty/></item><customer/></order>",
		"<quote><customer/><item><sku/></item></quote>",
	}
	for _, d := range docs {
		if err := st.AddXML(strings.NewReader(d)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streamed %d trees (%d pattern occurrences), synopsis %d bytes\n\n",
		st.TreesProcessed(), st.PatternsProcessed(), st.MemoryBytes().Total())

	// Ordered count: order with a customer followed by an item.
	q := sketchtree.Pattern("order",
		sketchtree.Pattern("customer"),
		sketchtree.Pattern("item"))
	est, err := st.CountOrdered(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT_ord(order(customer, item))   ≈ %.1f   (true 3: two in doc 1, one in doc 2)\n", est)

	// Unordered count also matches doc 3, where item precedes customer.
	est, err = st.CountUnordered(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(order{customer, item})       ≈ %.1f   (true 4)\n", est)

	// Wildcard: any record type with a customer.
	ext, err := sketchtree.ParsePath("*/customer")
	if err != nil {
		log.Fatal(err)
	}
	estExt, truncated, err := st.CountExtended(ext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(*/customer)                  ≈ %.1f   (true 4; truncated=%v)\n", estExt, truncated)

	// Descendant: order//sku regardless of nesting depth.
	ext, err = sketchtree.ParsePath("order//sku")
	if err != nil {
		log.Fatal(err)
	}
	estExt, _, err = st.CountExtended(ext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(order//sku)                  ≈ %.1f   (true 4, via order/item/sku)\n", estExt)
}
