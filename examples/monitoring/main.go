// Live pipeline monitoring: a feed processor keeps a SketchTree
// synopsis over the most recent W trees (the AMS deletion property,
// paper §5.2) while the new observability layer watches the pipeline
// itself. Metrics are enabled up front; the monitor polls Stats()
// between batches and reports
//
//   - drift: the windowed count of a pattern as the stream shifts from
//     bibliography records toward conference papers,
//   - accuracy drift: the exact-shadow auditor's observed relative
//     error over its audited sample, recomputed per batch — the live
//     answer to "can I still trust the estimates as the stream
//     changes?", and
//   - throughput: patterns/sec and the per-stage cost breakdown
//     (EnumTree, Prüfer+fingerprint, sketch update, top-k) from the
//     stage timers, plus the query-latency histogram.
//
// The same Stats() call drives cmd/sketchtree's -metrics endpoint; a
// service would poll or scrape it exactly like this loop does.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"time"

	"sketchtree"
	"sketchtree/internal/datagen"
)

const (
	window = 2000
	batch  = 1000
)

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1 = 50
	cfg.TopK = 50
	st, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Opt in to stage timers and query-latency measurement. Counters
	// (trees, patterns, queries) are on regardless.
	st.EnableMetrics(true)
	// Opt in to the exact-shadow auditor: true counts are kept for a
	// 256-pattern sample so the monitor can report observed accuracy,
	// not just the a-priori (ε, δ) guarantee. Must precede ingestion.
	if err := st.EnableAudit(256); err != nil {
		log.Fatal(err)
	}

	// Two phases of stream drift: mostly articles first, then mostly
	// inproceedings (different generator seeds shift the type mix by
	// rejection).
	phase1 := keepType(datagen.DBLP(1, 40000), "article", 4000)
	phase2 := keepType(datagen.DBLP(2, 40000), "inproceedings", 4000)
	stream := append(phase1, phase2...)

	q := sketchtree.Pattern("inproceedings", sketchtree.Pattern("author"))
	fmt.Printf("windowed count of inproceedings/author (window = %d trees), with pipeline stats:\n\n", window)

	var win []*sketchtree.Tree
	prev := st.Stats()
	prevAt := time.Now()
	for i, t := range stream {
		if err := st.AddTree(t); err != nil {
			log.Fatal(err)
		}
		win = append(win, t)
		if len(win) > window {
			// Expire the oldest tree from the synopsis.
			if err := st.RemoveTree(win[0]); err != nil {
				log.Fatal(err)
			}
			win = win[1:]
		}
		if (i+1)%batch != 0 {
			continue
		}
		est, err := st.CountOrdered(q)
		if err != nil {
			log.Fatal(err)
		}
		// Accuracy drift: re-score the audited sample against the live
		// sketch. The quantiles also land in Stats().Audit, so a scraper
		// of the /metrics endpoint would see the same panel.
		rep, err := st.AuditReport()
		if err != nil {
			log.Fatal(err)
		}
		// Drift: the windowed estimate. Throughput: the sketch stage's
		// op count is gross (adds and removals both update sketches),
		// unlike the net Patterns counter, so its delta over wall time
		// is the pipeline's true pattern throughput.
		now := time.Now()
		cur := st.Stats()
		elapsed := now.Sub(prevAt).Seconds()
		ops := cur.Stage(sketchtree.StageSketch).Count - prev.Stage(sketchtree.StageSketch).Count
		fmt.Printf("  after %5d trees: ≈ %6.0f %-14s  err p50 %5.3f p90 %5.3f  %7.0f patterns/s\n",
			i+1, est, bars(int(est/40)), rep.P50, rep.P90, float64(ops)/elapsed)
		prev, prevAt = cur, now
	}

	// The cumulative per-stage cost breakdown the stage timers
	// collected along the way (parse is idle here: the stream comes
	// from the generator, not XML).
	s := st.Stats()
	fmt.Printf("\npipeline totals: %d trees net (%d removals), %d pattern occurrences net\n",
		s.Trees, s.Removes, s.Patterns)
	fmt.Printf("stage breakdown (count, total, per-op):\n")
	for stage := sketchtree.Stage(0); stage < sketchtree.Stage(len(s.Stages)); stage++ {
		sg := s.Stage(stage)
		if sg.Count == 0 {
			continue
		}
		fmt.Printf("  %-12s %9d  %12v  %9v\n", stage, sg.Count, sg.Duration(), sg.PerOp())
	}
	fmt.Printf("queries: %d answered, %d errors, mean latency %v\n",
		s.Queries.Count, s.Queries.Errors, meanLatency(s.Queries))

	// Final accuracy panel from the auditor plus the sketch-health
	// diagnosis (partition skew, top-k churn).
	rep, err := st.AuditReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: %d patterns shadowed, rel. error mean %.3f p90 %.3f max %.3f (%.0f%% within ε=0.15)\n",
		rep.Tracked, rep.Mean, rep.P90, rep.Max, 100*rep.WithinFraction(0.15))
	hr := st.HealthReport()
	fmt.Printf("health: %d virtual streams, max share %.1f%% (skew ratio %.1f), top-k residency %d\n",
		hr.VirtualStreams, 100*hr.MaxShare, hr.SkewRatio, hr.TopK.Residency)
	for _, w := range hr.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
}

func meanLatency(q sketchtree.QueryStats) time.Duration {
	if n := q.Timed(); n > 0 {
		return time.Duration(q.Nanos / n)
	}
	return 0
}

// keepType filters the generator output to records of one type.
func keepType(src *datagen.Source, typ string, n int) []*sketchtree.Tree {
	var out []*sketchtree.Tree
	for len(out) < n {
		t, ok := src.Next()
		if !ok {
			break
		}
		if t.Root.Label == typ {
			out = append(out, t)
		}
	}
	return out
}

func bars(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
