// Sliding-window trend monitoring: a feed processor keeps a SketchTree
// synopsis over the most recent W trees only, exploiting the AMS
// deletion property (paper §5.2) — expired trees are simply subtracted
// from the sketches. The monitor reports how a pattern's windowed
// count moves as the stream drifts from bibliography records toward
// conference papers, and checkpoints the synopsis with Save/Load.
//
//	go run ./examples/monitoring
package main

import (
	"bytes"
	"fmt"
	"log"

	"sketchtree"
	"sketchtree/internal/datagen"
)

const window = 2000

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1 = 50
	cfg.TopK = 50
	st, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Two phases of stream drift: mostly articles first, then mostly
	// inproceedings (different generator seeds shift the type mix by
	// rejection).
	phase1 := keepType(datagen.DBLP(1, 40000), "article", 4000)
	phase2 := keepType(datagen.DBLP(2, 40000), "inproceedings", 4000)
	stream := append(phase1, phase2...)

	q := sketchtree.Pattern("inproceedings", sketchtree.Pattern("author"))
	fmt.Printf("windowed count of inproceedings/author (window = %d trees):\n\n", window)

	var win []*sketchtree.Tree
	for i, t := range stream {
		if err := st.AddTree(t); err != nil {
			log.Fatal(err)
		}
		win = append(win, t)
		if len(win) > window {
			// Expire the oldest tree from the synopsis.
			if err := st.RemoveTree(win[0]); err != nil {
				log.Fatal(err)
			}
			win = win[1:]
		}
		if (i+1)%1000 == 0 {
			est, err := st.CountOrdered(q)
			if err != nil {
				log.Fatal(err)
			}
			bar := int(est / 40)
			if bar < 0 {
				bar = 0
			}
			fmt.Printf("  after %5d trees: ≈ %6.0f %s\n", i+1, est, bars(bar))
		}
	}

	// Checkpoint the synopsis and resume it — estimates carry over
	// bit-for-bit.
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	resumed, err := sketchtree.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := st.CountOrdered(q)
	b, _ := resumed.CountOrdered(q)
	fmt.Printf("\ncheckpoint: %d bytes; estimate before %.0f / after restore %.0f (identical: %v)\n",
		size, a, b, a == b)
}

// keepType filters the generator output to records of one type.
func keepType(src *datagen.Source, typ string, n int) []*sketchtree.Tree {
	var out []*sketchtree.Tree
	for len(out) < n {
		t, ok := src.Next()
		if !ok {
			break
		}
		if t.Root.Label == typ {
			out = append(out, t)
		}
	}
	return out
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
