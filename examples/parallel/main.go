// Parallel ingestion with the Ingestor API: AMS sketches are linear
// projections, so synopses built on disjoint shards of the stream with
// the same configuration (and seed) merge by cell-wise addition into
// exactly the synopsis of the whole stream. The Ingestor packages that
// argument as a pipeline — N worker shards behind a bounded channel
// with backpressure, first-error propagation, and a deterministic
// merge on Close — and this example verifies the result against a
// sequentially built synopsis: the counters match bit for bit.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"sketchtree"
	"sketchtree/internal/datagen"
)

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 50
	cfg.TopK = 0 // merging requires top-k off; see SketchTree.Merge
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}

	// Materialize the stream once so sequential and parallel runs see
	// the same trees.
	const n = 6000
	var stream []*sketchtree.Tree
	src := datagen.Treebank(11, n)
	src.ForEach(func(t *sketchtree.Tree) error {
		stream = append(stream, t)
		return nil
	})

	// Sequential baseline.
	seq, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for _, t := range stream {
		if err := seq.AddTree(t); err != nil {
			log.Fatal(err)
		}
	}
	seqDur := time.Since(t0)

	// Parallel: one Add loop, the Ingestor fans out to worker shards
	// and merges them on Close.
	in, err := sketchtree.NewIngestor(cfg, workers)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	for _, t := range stream {
		if err := in.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	merged, err := in.Close()
	if err != nil {
		log.Fatal(err)
	}
	parDur := time.Since(t0)

	fmt.Printf("%d trees, %d workers\n", len(stream), in.Workers())
	fmt.Printf("sequential: %8.2fs\n", seqDur.Seconds())
	fmt.Printf("parallel:   %8.2fs (%.1fx)\n", parDur.Seconds(),
		seqDur.Seconds()/parDur.Seconds())

	// Verify: estimates are identical, not merely close.
	p := sketchtree.Pattern
	identical := true
	for _, q := range []*sketchtree.Node{
		p("S", p("NP"), p("VP")),
		p("NP", p("DT"), p("NN")),
		p("VP", p("VBD", p("NP"))),
		p("PP", p("IN"), p("NP")),
	} {
		a, err := seq.CountOrdered(q)
		if err != nil {
			log.Fatal(err)
		}
		b, err := merged.CountOrdered(q)
		if err != nil {
			log.Fatal(err)
		}
		match := a == b
		identical = identical && match
		fmt.Printf("  %-24s seq ≈ %8.0f  merged ≈ %8.0f  identical=%v\n",
			q.String(), a, b, match)
	}
	if !identical {
		log.Fatal("merged synopsis diverged from sequential")
	}
	fmt.Println("merged synopsis is bit-identical to sequential processing")
}
