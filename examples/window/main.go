// Sliding-window counting: the same synopsis, but over only the most
// recent documents. The example enables a 3-slice window sealed every
// 4 trees, streams 12 documents through it (so the first slice
// expires), watches the lifecycle counters move, and then proves the
// window's defining property on the spot: the served state is
// bit-identical to a fresh engine fed only the documents still inside
// the window.
//
//	go run ./examples/window
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"sketchtree"
)

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 50
	cfg.TopK = 0 // slices must merge, so top-k tracking is off
	cfg.Seed = 1

	safe, err := sketchtree.NewSafe(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Before the first document: document zero must land in slice zero
	// for expiry to mean "the oldest 4 trees left the window".
	if err := safe.EnableWindow(sketchtree.WindowPolicy{
		Slices:     3, // the window covers at most 3 slices...
		SliceTrees: 4, // ...of 4 trees each: the last ≤12 documents
	}); err != nil {
		log.Fatal(err)
	}
	defer safe.DisableWindow()

	// Two eras of traffic: early documents are item-heavy orders, late
	// ones are returns. A landmark synopsis would blur them forever; the
	// window forgets the early era as it ages out.
	early := "<order><customer/><item><sku/></item><item><sku/></item></order>"
	late := "<return><customer/><reason/></return>"
	docs := make([]string, 0, 12)
	for i := 0; i < 4; i++ {
		docs = append(docs, early)
	}
	for i := 0; i < 8; i++ {
		docs = append(docs, late)
	}

	itemQ := sketchtree.Pattern("order", sketchtree.Pattern("item", sketchtree.Pattern("sku")))
	for i, doc := range docs {
		if err := safe.AddXML(strings.NewReader(doc)); err != nil {
			log.Fatal(err)
		}
		if (i+1)%4 == 0 {
			ws, _ := safe.WindowStats()
			n, err := safe.CountOrdered(itemQ)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("after %2d docs: live=%d trees in %d slices, advances=%d expires=%d, COUNT(order/item/sku)=%.1f\n",
				i+1, ws.LiveTrees, len(ws.Live), ws.Advances, ws.Expires, n)
		}
	}
	// After 12 documents the third seal filled the ring and dropped the
	// early era: the item query's count fell to 0 — those orders are no
	// longer "recent" — even though 4 of them were ingested.

	// The window's contract, checked live: merged live slices are
	// bit-identical to a fresh engine fed only the live documents.
	if err := safe.RefreshWindow(); err != nil {
		log.Fatal(err)
	}
	fresh, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	live := docs[4:] // the expired slice held docs 0..3
	for _, doc := range live {
		if err := fresh.AddXML(strings.NewReader(doc)); err != nil {
			log.Fatal(err)
		}
	}
	wBytes, err := safe.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fBytes, err := fresh.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windowed synopsis == fresh synopsis over %d live docs: %v (%d bytes)\n",
		len(live), bytes.Equal(wBytes, fBytes), len(wBytes))

	returnQ := sketchtree.Pattern("return", sketchtree.Pattern("reason"))
	wc, err := safe.CountOrdered(returnQ)
	if err != nil {
		log.Fatal(err)
	}
	fc, err := fresh.CountOrdered(returnQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(return/reason): windowed %v == fresh %v: %v\n", wc, fc, wc == fc)
}
