// Snapshot-isolated query serving: a Safe synopsis behind the HTTP
// layer, with snapshot serving on so queries never wait for writers.
// The example boots the server on a loopback port, ingests a stream
// over HTTP while querying it, shows the snapshot provenance on every
// answer and the plan-cache counters warming up, then drains
// gracefully.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"sketchtree"
	"sketchtree/internal/server"
)

func post(base, path, body string) (map[string]any, error) {
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, data)
	}
	out := map[string]any{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 50
	cfg.TopK = 0
	safe, err := sketchtree.NewSafe(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Refresh the serving snapshot every 100 trees or 50ms, whichever
	// comes first; queries read it without touching the write lock.
	if err := safe.EnableSnapshots(sketchtree.SnapshotPolicy{
		EveryTrees: 100,
		MaxAge:     50 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}
	defer safe.DisableSnapshots()

	srv := server.New(safe, server.Options{Timeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// Ingest a forest over HTTP: orders with customer/item subtrees.
	var forest bytes.Buffer
	forest.WriteString("<forest>")
	for i := 0; i < 500; i++ {
		if i%3 == 0 {
			forest.WriteString("<order><customer/><item><sku/></item></order>")
		} else {
			forest.WriteString("<order><item><sku/></item><customer/></order>")
		}
	}
	forest.WriteString("</forest>")
	if _, err := post(base, "/ingest?forest=1", forest.String()); err != nil {
		log.Fatal(err)
	}

	// Query it. Each answer carries the snapshot provenance: which
	// frozen copy (by tree count) produced the estimate.
	for _, q := range []string{
		`{"kind":"ordered","pattern":"order/customer"}`,
		`{"kind":"unordered","pattern":"(order (customer) (item))"}`,
		`{"kind":"ordered","pattern":"order/item/sku","with_error":true}`,
		`{"kind":"ordered","pattern":"order/item/sku","with_error":true}`, // plan-cache hit
	} {
		ans, err := post(base, "/query", q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s -> %.0f (snapshot=%v trees=%v)\n",
			q, ans["estimate"], ans["snapshot"], ans["snapshot_trees"])
	}

	// The second identical query above hit the plan cache.
	if plans := safe.Stats().Plans; plans != nil {
		fmt.Printf("plan cache: %d hits, %d misses, %d/%d entries\n",
			plans.Hits, plans.Misses, plans.Entries, plans.Capacity)
	}

	// Graceful drain: in-flight requests finish, then the listener
	// closes.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
