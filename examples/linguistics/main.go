// Linguistics over a treebank stream (paper Examples 4–6): a linguist
// verifies word-order and question-structure hypotheses over a large
// parse-tree corpus with a single pass and a small synopsis.
//
//   - Example 4: does the language use free word order? Compare counts
//     of S(NP,VP) vs S with other child arrangements (unordered vs
//     ordered counts).
//
//   - Example 5: how many 'who'-like questions does the corpus
//     support? An OR over verb tags becomes a set-count query.
//
//   - Example 6: counts with negated context ("VP with an NP but NOT
//     under SBAR") become count-difference expressions.
//
//     go run ./examples/linguistics
package main

import (
	"fmt"
	"log"

	"sketchtree"
	"sketchtree/internal/datagen"
)

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 4
	cfg.S1 = 50
	cfg.TopK = 100
	st, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Stream a synthetic treebank (stands in for a real XML corpus;
	// swap for AddXMLForest over a treebank file).
	src := datagen.Treebank(2024, 4000)
	if err := src.ForEach(st.AddTree); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d parse trees (%d pattern occurrences), synopsis %.0f KB\n\n",
		st.TreesProcessed(), st.PatternsProcessed(),
		float64(st.MemoryBytes().Total())/1024)

	p := sketchtree.Pattern

	// --- Example 4: word order ---
	// Ordered subject-verb: S(NP, VP) with NP before VP.
	svo := p("S", p("NP"), p("VP"))
	ordered, err := st.CountOrdered(svo)
	if err != nil {
		log.Fatal(err)
	}
	// Any order of NP and VP under S.
	free, err := st.CountUnordered(svo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 4 — word order:")
	fmt.Printf("  S with NP before VP   ≈ %.0f\n", ordered)
	fmt.Printf("  S with {NP, VP}       ≈ %.0f\n", free)
	if free > 0 {
		fmt.Printf("  → %.0f%% of NP+VP sentences use subject-first order\n\n",
			100*ordered/free)
	}

	// --- Example 5: question verbs ---
	// "How many clauses could answer a who-question?" — the paper's
	// VBD|VBP|VBZ disjunction is an OR label; SketchTree expands it
	// into distinct patterns and answers with one set-count query.
	total, err := st.CountAlternatives(p("VP", p("VBD|VBZ"), p("NP")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 5 — question structures (VP(VBD|VBZ, NP) OR query):")
	fmt.Printf("  COUNT(VP(VBD|VBZ, NP)) ≈ %.0f\n\n", total)

	// --- Example 6: negated context via count difference ---
	// VP(VBD, NP) anywhere, minus those whose S parent sits under SBAR:
	// approximate "main-clause past-tense verb phrases".
	all := p("S", p("NP"), p("VP", p("VBD")))
	embedded := p("SBAR", p("S", p("NP"), p("VP", p("VBD"))))
	diff := sketchtree.Sub(sketchtree.Count(all), sketchtree.Count(embedded))
	est, err := st.EstimateExpression(diff)
	if err != nil {
		log.Fatal(err)
	}
	allEst, _ := st.CountOrdered(all)
	embEst, _ := st.CountOrdered(embedded)
	fmt.Println("Example 6 — negated context (count difference):")
	fmt.Printf("  S(NP, VP(VBD)) anywhere              ≈ %.0f\n", allEst)
	fmt.Printf("  ... embedded under SBAR              ≈ %.0f\n", embEst)
	fmt.Printf("  main-clause only (single estimator)  ≈ %.0f\n", est)
}
