// Probabilistic grammar scoring over a treebank stream (paper
// Example 7): the probability of a PCFG production α → β is
// COUNT(α → β) / Σ_γ COUNT(α → γ), and the probability of a parse
// tree is the product of its rules' probabilities. Both numerator
// (product of counts) and denominator (sums of counts) are estimated
// by SketchTree in one pass — products need k-wise independent ξ, so
// the engine is configured with Independence 6.
//
//	go run ./examples/pcfg
package main

import (
	"fmt"
	"log"

	"sketchtree"
	"sketchtree/internal/datagen"
)

// rule is a PCFG production represented as a 1-level tree pattern.
type rule struct {
	name string
	pat  *sketchtree.Node
}

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 75
	cfg.Independence = 6 // products of two counts need >= 4-wise; 6 covers the variance analysis
	cfg.TopK = 100
	st, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	src := datagen.Treebank(99, 5000)
	if err := src.ForEach(st.AddTree); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d parse trees\n\n", st.TreesProcessed())

	p := sketchtree.Pattern
	// The parse under scrutiny uses two rules: S → NP VP and
	// VP → VBD NP.
	r1 := rule{"S → NP VP", p("S", p("NP"), p("VP"))}
	r2 := rule{"VP → VBD NP", p("VP", p("VBD"), p("NP"))}

	// Alternatives with the same left-hand side (the denominators).
	sAlts := []*sketchtree.Node{
		p("S", p("NP"), p("VP")),
		p("S", p("NP"), p("VP"), p("PP")),
		p("S", p("SBAR"), p("NP"), p("VP")),
		p("S", p("S"), p("CC"), p("S")),
	}
	vpAlts := []*sketchtree.Node{
		p("VP", p("VBD"), p("NP")),
		p("VP", p("VBZ"), p("NP")),
		p("VP", p("VBD"), p("NP"), p("PP")),
		p("VP", p("VBD")),
		p("VP", p("VP"), p("PP")),
		p("VP", p("MD"), p("VP")),
	}

	// Rule probabilities from individual and set estimates.
	prob := func(r rule, alts []*sketchtree.Node) float64 {
		num, err := st.CountOrdered(r.pat)
		if err != nil {
			log.Fatal(err)
		}
		den, err := st.CountOrderedSet(alts)
		if err != nil {
			log.Fatal(err)
		}
		pr := num / den
		fmt.Printf("  P(%-14s) ≈ %6.0f / %6.0f = %.3f\n", r.name, num, den, pr)
		return pr
	}
	fmt.Println("rule probabilities (set estimator for denominators):")
	p1 := prob(r1, sAlts)
	p2 := prob(r2, vpAlts)

	// Parse probability = product of rule probabilities. The paper
	// estimates the numerator product COUNT(r1)×COUNT(r2) with one
	// unbiased product estimator rather than multiplying two noisy
	// estimates.
	numProd, err := st.EstimateExpression(
		sketchtree.Mul(sketchtree.Count(r1.pat), sketchtree.Count(r2.pat)))
	if err != nil {
		log.Fatal(err)
	}
	den1, _ := st.CountOrderedSet(sAlts)
	den2, _ := st.CountOrderedSet(vpAlts)
	fmt.Printf("\nparse probability:\n")
	fmt.Printf("  naive product of rule probabilities: %.5f\n", p1*p2)
	fmt.Printf("  single product estimator (Example 3): %.0f / (%.0f × %.0f) = %.5f\n",
		numProd, den1, den2, numProd/(den1*den2))
}
