// Selectivity estimation over a bibliography stream (paper §9: "...
// useful for tasks such as selectivity estimation over stored data,
// especially when the data is very large and multiple passes are
// impractically expensive").
//
// A query optimizer needs quick cardinality estimates for twig
// predicates like article[author][year] without scanning the corpus.
// We stream DBLP-style records once, then compare SketchTree's
// estimates against exact counts computed here only for validation.
//
//	go run ./examples/selectivity
package main

import (
	"fmt"
	"log"

	"sketchtree"
	"sketchtree/internal/datagen"
	"sketchtree/internal/match"
)

func main() {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 50
	cfg.TopK = 100 // DBLP-style data is highly skewed: tracking pays off
	st, err := sketchtree.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Queries an optimizer might probe. Values are node labels (the
	// paper's convention), so "article by author #1" is a 2-edge twig.
	p := sketchtree.Pattern
	queries := []*sketchtree.Node{
		p("article", p("author")),
		p("article", p("author"), p("year")),
		p("inproceedings", p("author"), p("booktitle")),
		p("article", p("author", p("1 a"))), // author value predicate
		p("article", p("year", p("1974"))),  // year value predicate
		p("book", p("author"), p("publisher")),
	}

	// One streaming pass. Exact counting alongside is only for the
	// comparison table — a real deployment keeps just the synopsis.
	exact := make([]int64, len(queries))
	src := datagen.DBLP(7, 8000)
	err = src.ForEach(func(t *sketchtree.Tree) error {
		for i, q := range queries {
			exact[i] += match.CountOrdered(t.Root, q)
		}
		return st.AddTree(t)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d records (%d pattern occurrences)\n",
		st.TreesProcessed(), st.PatternsProcessed())
	fmt.Printf("synopsis: %.0f KB vs exhaustive pattern counters: impractical at paper scale (Table 1)\n\n",
		float64(st.MemoryBytes().Total())/1024)
	fmt.Printf("%-44s %10s %24s %10s %8s\n", "twig query", "estimate", "95% CI", "exact", "rel.err")
	for i, q := range queries {
		est, err := st.CountOrderedWithError(q)
		if err != nil {
			log.Fatal(err)
		}
		re := 0.0
		if exact[i] > 0 {
			re = (est.Value - float64(exact[i])) / float64(exact[i])
		}
		// The CI comes from the sketch alone (row-mean spread capped by
		// the Equation-2 variance bound) — no ground truth needed.
		ci := fmt.Sprintf("[%.0f, %.0f]", est.CI95[0], est.CI95[1])
		fmt.Printf("%-44s %10.0f %24s %10d %7.1f%%\n", q.String(), est.Value, ci, exact[i], 100*re)
	}
}
