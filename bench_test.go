package sketchtree

// One benchmark per table and figure of the paper's evaluation (§7),
// plus ablation benches for the design choices DESIGN.md calls out
// (virtual streams, top-k deletion, ξ family, 1-D mapping). Benches
// run the experiment harness at small scale — the same code
// cmd/experiments runs at medium/paper scale — and report the figures'
// headline quantities as custom metrics (relerr% = average relative
// error ×100, patterns = pattern occurrences, KB = synopsis size).

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"sketchtree/internal/ams"
	"sketchtree/internal/core"
	"sketchtree/internal/datagen"
	"sketchtree/internal/experiments"
	"sketchtree/internal/gf2"
	"sketchtree/internal/pairing"
	"sketchtree/internal/prufer"
	"sketchtree/internal/rabin"
	"sketchtree/internal/tree"
	"sketchtree/internal/xi"
)

// benchScale trims the small scale further so the full bench suite
// stays in the minutes range.
func benchScale() experiments.Scale {
	sc := experiments.ScaleSmall()
	sc.TreebankTrees = 250
	sc.DBLPTrees = 500
	sc.Runs = 1
	sc.QueriesPerRange = 8
	sc.SumQueries = 60
	sc.ProductQueries = 40
	sc.TopKsTreebank = []int{10, 50}
	sc.TopKsDBLP = []int{1, 25}
	return sc
}

var (
	bundleOnce sync.Once
	tbBundle   *experiments.Bundle
	dbBundle   *experiments.Bundle
	bundleErr  error
)

func bundles(b *testing.B) (*experiments.Bundle, *experiments.Bundle) {
	b.Helper()
	bundleOnce.Do(func() {
		sc := benchScale()
		tbBundle, bundleErr = experiments.Prepare(sc, "TREEBANK")
		if bundleErr != nil {
			return
		}
		dbBundle, bundleErr = experiments.Prepare(sc, "DBLP")
	})
	if bundleErr != nil {
		b.Fatal(bundleErr)
	}
	return tbBundle, dbBundle
}

// --- Table 1 ---

func BenchmarkTable1DatasetStats(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, db := bundles(b)
		rowT := experiments.Table1(tb, sc)
		rowD := experiments.Table1(db, sc)
		b.ReportMetric(float64(rowT.DistinctPatterns), "tb-distinct")
		b.ReportMetric(float64(rowD.DistinctPatterns), "dblp-distinct")
		b.ReportMetric(float64(rowT.TotalPatterns), "tb-patterns")
	}
}

// --- Figure 8 ---

func BenchmarkFigure8WorkloadGeneration(b *testing.B) {
	tb, db := bundles(b)
	for i := 0; i < b.N; i++ {
		rt := experiments.Figure8(tb)
		rd := experiments.Figure8(db)
		n := 0
		for _, c := range rt.Counts {
			n += c
		}
		for _, c := range rd.Counts {
			n += c
		}
		b.ReportMetric(float64(n), "queries")
	}
}

// --- Figure 9 ---

func BenchmarkFigure9aEnumTreeTime(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure9(tb, sc, tb.K)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(float64(last.Patterns)/last.Seconds, "patterns/s")
	}
}

func BenchmarkFigure9bEnumTreePatterns(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure9(tb, sc, tb.K)
		if err != nil {
			b.Fatal(err)
		}
		// The figure's series: patterns generated per k; report the
		// growth factor from k=1 to k=max.
		b.ReportMetric(float64(pts[len(pts)-1].Patterns), "patterns@kmax")
		b.ReportMetric(float64(pts[len(pts)-1].Patterns)/float64(pts[0].Patterns), "growth")
	}
}

// --- Figure 10 ---

func meanErr(rows [][]float64) float64 {
	s, n := 0.0, 0
	for _, row := range rows {
		for _, e := range row {
			s += e
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

func errorSweepBench(b *testing.B, dataset string, s1 int, topks []int) {
	tb, db := bundles(b)
	bundle := tb
	if dataset == "DBLP" {
		bundle = db
	}
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ErrorSweep(bundle, sc, s1, topks)
		if err != nil {
			b.Fatal(err)
		}
		// First and last top-k columns: the figure's storyline is the
		// error dropping as top-k grows.
		first, last := res.AvgRelErr[0], res.AvgRelErr[len(res.AvgRelErr)-1]
		b.ReportMetric(meanErr([][]float64{first})*100, "relerr%@topk-min")
		b.ReportMetric(meanErr([][]float64{last})*100, "relerr%@topk-max")
		b.ReportMetric(float64(res.MemoryBytes[len(res.MemoryBytes)-1])/1024, "KB")
	}
}

func BenchmarkFigure10aTreebankS1_25(b *testing.B) {
	errorSweepBench(b, "TREEBANK", 25, benchScale().TopKsTreebank)
}

func BenchmarkFigure10bTreebankS1_50(b *testing.B) {
	errorSweepBench(b, "TREEBANK", 50, benchScale().TopKsTreebank)
}

func BenchmarkFigure10cDBLPS1_50(b *testing.B) {
	errorSweepBench(b, "DBLP", 50, benchScale().TopKsDBLP)
}

func BenchmarkFigure10dDBLPS1_75(b *testing.B) {
	errorSweepBench(b, "DBLP", 75, benchScale().TopKsDBLP)
}

// --- Figures 11 and 12 ---

func BenchmarkFigure11SumProductWorkloads(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		// The histograms of Figure 11 fall out of the sweeps' workload
		// generation; a single-top-k sweep regenerates both.
		sum, err := experiments.SumSweep(tb, sc, 25, []int{10})
		if err != nil {
			b.Fatal(err)
		}
		prod, err := experiments.ProductSweep(tb, sc, 25, []int{10})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, h := range sum.Histogram {
			n += h
		}
		for _, h := range prod.Histogram {
			n += h
		}
		b.ReportMetric(float64(n), "queries")
	}
}

func BenchmarkFigure12SumEstimation(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SumSweep(tb, sc, 25, sc.TopKsTreebank)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanErr(res.AvgRelErr[:1])*100, "relerr%@topk-min")
		b.ReportMetric(meanErr(res.AvgRelErr[len(res.AvgRelErr)-1:])*100, "relerr%@topk-max")
	}
}

func BenchmarkFigure12ProductEstimation(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ProductSweep(tb, sc, 25, sc.TopKsTreebank)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanErr(res.AvgRelErr[:1])*100, "relerr%@topk-min")
		b.ReportMetric(meanErr(res.AvgRelErr[len(res.AvgRelErr)-1:])*100, "relerr%@topk-max")
	}
}

// --- §7.6/§7.7 processing cost ---

func BenchmarkProcessingCostVsS1(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.CostSweep(tb, sc, [][2]int{{25, 10}, {50, 10}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].Seconds/pts[0].Seconds, "s1-cost-ratio")
	}
}

func BenchmarkProcessingCostVsTopK(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.CostSweep(tb, sc, [][2]int{{25, 10}, {25, 100}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((pts[1].Seconds/pts[0].Seconds-1)*100, "topk-overhead%")
	}
}

// --- Ablations ---

// Virtual streams (§5.3): identical stream and budget, p=1 vs p=59.
func BenchmarkAblationVirtualStreams(b *testing.B) {
	tb, _ := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		one := sc
		one.VirtualStreams = 1
		resOne, err := experiments.ErrorSweep(tb, one, 25, []int{1})
		if err != nil {
			b.Fatal(err)
		}
		resMany, err := experiments.ErrorSweep(tb, sc, 25, []int{1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanErr(resOne.AvgRelErr)*100, "relerr%@p=1")
		b.ReportMetric(meanErr(resMany.AvgRelErr)*100, "relerr%@p=59")
	}
}

// Top-k deletion (§5.2): same sketch budget with and without tracking.
func BenchmarkAblationTopK(b *testing.B) {
	_, db := bundles(b)
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		off, err := experiments.ErrorSweep(db, sc, 50, []int{0})
		if err != nil {
			b.Fatal(err)
		}
		on, err := experiments.ErrorSweep(db, sc, 50, []int{25})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanErr(off.AvgRelErr)*100, "relerr%@off")
		b.ReportMetric(meanErr(on.AvgRelErr)*100, "relerr%@topk25")
	}
}

// ξ family cost: BCH four-wise vs six-wise polynomial per sketch
// update (the price of enabling product expressions).
func BenchmarkAblationXiBCHUpdate(b *testing.B) {
	benchXiUpdate(b, xi.NewBCHFamily(gf2.MustField(gf2.DefaultModulus(63))))
}

func BenchmarkAblationXiPoly6Update(b *testing.B) {
	fam, err := xi.NewPolyFamily(gf2.MustField(gf2.DefaultModulus(63)), 6)
	if err != nil {
		b.Fatal(err)
	}
	benchXiUpdate(b, fam)
}

func benchXiUpdate(b *testing.B, fam *xi.Family) {
	rng := rand.New(rand.NewPCG(1, 2))
	seeds, err := ams.NewSeeds(fam, 25, 7, rng)
	if err != nil {
		b.Fatal(err)
	}
	sk := seeds.NewSketch()
	p := &xi.Prep{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.Prepare(uint64(i)*0x9e3779b97f4a7c15, p)
		sk.UpdatePrepared(p, 1)
	}
}

// 1-D mapping: Rabin fingerprint (default) vs exact Cantor pairing
// over big.Int (the paper's PF alternative) per pattern.
func BenchmarkAblationMappingRabin(b *testing.B) {
	fp := rabin.MustNew(gf2.DefaultModulus(61))
	seq := prufer.OfNode(samplePattern())
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = seq.Encode(buf[:0])
		sinkU64 = fp.Fingerprint(buf)
	}
}

func BenchmarkAblationMappingCantorPairing(b *testing.B) {
	seq := prufer.OfNode(samplePattern())
	fp := rabin.MustNew(gf2.DefaultModulus(61))
	tuple := make([]uint64, 0, len(seq.LPS)+len(seq.NPS))
	for _, l := range seq.LPS {
		tuple = append(tuple, fp.FingerprintString(l)) // hash(X) per §2.2
	}
	for _, n := range seq.NPS {
		tuple = append(tuple, uint64(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBig = pairing.PFTuple(tuple)
	}
}

func samplePattern() *tree.Node {
	return tree.T("S",
		tree.T("NP", tree.T("DT"), tree.T("NN")),
		tree.T("VP", tree.T("VBD"), tree.T("NP")))
}

// Sharded parallel ingestion: AddTree throughput through the Ingestor
// at 1..8 worker shards over the TREEBANK-style generator. The single
// producer only enqueues, so ns/op measures end-to-end ingestion
// (enumeration + sketch updates happen on the workers); near-linear
// scaling up to GOMAXPROCS is the expected shape, since shards share
// no state until the final merge.
func BenchmarkIngestParallel(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 4
	cfg.VirtualStreams = 59
	cfg.TopK = 0 // merging requires top-k off
	src := datagen.Treebank(5, 1<<20)
	trees := make([]*Tree, 64)
	for i := range trees {
		trees[i], _ = src.Next()
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			in, err := NewIngestor(cfg, workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := in.Add(trees[i%len(trees)]); err != nil {
					b.Fatal(err)
				}
			}
			// Close drains the queue and merges the shards; that tail
			// belongs in the timed region for honest throughput.
			st, err := in.Close()
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if st.TreesProcessed() != int64(b.N) {
				b.Fatalf("TreesProcessed = %d, want %d", st.TreesProcessed(), b.N)
			}
			// The always-on counters must be the only instrumentation
			// that ran: with metrics disabled, no stage may carry time
			// (a non-zero duration would mean clock calls on the hot
			// path) while the counters still account for every tree.
			s := st.Stats()
			if s.TimersEnabled {
				b.Fatal("metrics enabled without opt-in")
			}
			for sg := Stage(0); sg < Stage(len(s.Stages)); sg++ {
				if n := s.Stage(sg).Nanos; n != 0 {
					b.Fatalf("stage %v timed %d ns with metrics disabled", sg, n)
				}
			}
			if s.Trees != int64(b.N) {
				b.Fatalf("Stats.Trees = %d, want %d", s.Trees, b.N)
			}
		})
	}
}

// Query latency over a prebuilt synopsis: the cost of one ordered
// point estimate (arrangement + fingerprint + sketch read), the figure
// the -metrics latency histogram buckets.
func BenchmarkEstimateOrdered(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 4
	cfg.VirtualStreams = 59
	st, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	src := datagen.Treebank(5, 1<<20)
	for i := 0; i < 200; i++ {
		t, _ := src.Next()
		if err := st.AddTree(t); err != nil {
			b.Fatal(err)
		}
	}
	q := Pattern("S", Pattern("NP"), Pattern("VP"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.CountOrdered(q); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end stream throughput at the paper's default configuration.
func BenchmarkStreamUpdateThroughput(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.MaxPatternEdges = 4
	cfg.VirtualStreams = 59
	e, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	src := datagen.Treebank(5, 1<<20)
	trees := make([]*tree.Tree, 64)
	for i := range trees {
		trees[i], _ = src.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.AddTree(trees[i%len(trees)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if e.TreesProcessed() > 0 {
		b.ReportMetric(float64(e.PatternsProcessed())/float64(e.TreesProcessed()), "patterns/tree")
	}
}

// --- Bench matrix ---
//
// The structured performance surface behind BENCH_matrix.json: ingest
// across tree size × pattern-size bound k × worker shards, query
// latency across query size × plan-cache behavior, and the shard
// merge. `make bench-matrix` runs exactly these cells and summarizes
// them; CI compares the summary against the committed
// testdata/bench/BENCH_baseline.json (warn-only, threshold 1.25).
// Cells use synthetic trees of a fixed node count so each axis varies
// one quantity only.

// matrixTrees builds a deterministic batch of n random trees of
// exactly size nodes over a five-label alphabet, so matrix cells are
// comparable across runs and machines.
func matrixTrees(seed uint64, size, n int) []*Tree {
	rng := rand.New(rand.NewPCG(seed, uint64(size)))
	labels := []string{"A", "B", "C", "D", "E"}
	out := make([]*Tree, n)
	for i := range out {
		nodes := make([]*Node, size)
		for j := range nodes {
			nodes[j] = Pattern(labels[rng.IntN(len(labels))])
		}
		for j := 1; j < size; j++ {
			nodes[rng.IntN(j)].AddChild(nodes[j])
		}
		out[i] = NewTree(nodes[0])
	}
	return out
}

// matrixQueries returns n distinct chain queries of the given edge
// count over the matrixTrees alphabet (distinct root labels, so a
// small plan cache probed round-robin misses every time).
func matrixQueries(edges, n int) []*Node {
	labels := []string{"A", "B", "C", "D", "E"}
	out := make([]*Node, n)
	for i := range out {
		root := Pattern(labels[i%len(labels)])
		cur := root
		for e := 0; e < edges; e++ {
			c := Pattern(labels[(i+e+1)%len(labels)])
			cur.AddChild(c)
			cur = c
		}
		out[i] = root
	}
	return out
}

func BenchmarkMatrixIngest(b *testing.B) {
	for _, size := range []int{16, 64} {
		trees := matrixTrees(11, size, 64)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for _, k := range []int{2, 4} {
				b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
					for _, workers := range []int{1, 4} {
						b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
							cfg := DefaultConfig()
							cfg.MaxPatternEdges = k
							cfg.VirtualStreams = 59
							cfg.TopK = 0 // merging requires top-k off
							in, err := NewIngestor(cfg, workers)
							if err != nil {
								b.Fatal(err)
							}
							b.ReportAllocs()
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								if err := in.Add(trees[i%len(trees)]); err != nil {
									b.Fatal(err)
								}
							}
							// Close drains and merges; that tail belongs in
							// the timed region for honest throughput.
							_, err = in.Close()
							b.StopTimer()
							if err != nil {
								b.Fatal(err)
							}
						})
					}
				})
			}
		})
	}
}

func BenchmarkMatrixQuery(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 4
	cfg.VirtualStreams = 59
	trees := matrixTrees(13, 32, 128)
	stHit, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// The miss engine holds the same synopsis behind a capacity-2 plan
	// cache; four distinct queries probed round-robin evict each entry
	// two probes before its reuse, so every lookup takes the miss path
	// (compute + store + evict) rather than bypassing the cache.
	missCfg := cfg
	missCfg.PlanCacheSize = 2
	stMiss, err := New(missCfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, tr := range trees {
		if err := stHit.AddTree(tr); err != nil {
			b.Fatal(err)
		}
		if err := stMiss.AddTree(tr); err != nil {
			b.Fatal(err)
		}
	}
	for _, edges := range []int{2, 4} {
		b.Run(fmt.Sprintf("pattern=%d", edges), func(b *testing.B) {
			b.Run("cache=hit", func(b *testing.B) {
				q := matrixQueries(edges, 1)[0]
				if _, err := stHit.CountOrdered(q); err != nil { // prime
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := stHit.CountOrdered(q); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("cache=miss", func(b *testing.B) {
				qs := matrixQueries(edges, 4)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := stMiss.CountOrdered(qs[i%len(qs)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkMatrixMerge times the shard-union step parallel ingestion
// pays at Close: a cell-wise sketch addition per virtual stream.
func BenchmarkMatrixMerge(b *testing.B) {
	for _, p := range []int{1, 59} {
		b.Run(fmt.Sprintf("vstreams=%d", p), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.MaxPatternEdges = 4
			cfg.VirtualStreams = p
			cfg.TopK = 0
			dst, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			src, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range matrixTrees(17, 32, 32) {
				if err := src.AddTree(tr); err != nil {
					b.Fatal(err)
				}
			}
			// Merging the same operand repeatedly just keeps adding its
			// counts — sketches are linear — so each iteration does the
			// same cell-wise work.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dst.Merge(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatrixWindow times windowed ingest across ring width and
// advance cadence: each Add lands in the current slice, every `every`
// trees a slice seals (advance + possible expiry), and each seal
// triggers a merge-rebuild of the published snapshot — so the cells
// expose how rebuild cost scales with live slice count and cadence.
func BenchmarkMatrixWindow(b *testing.B) {
	trees := matrixTrees(19, 32, 128)
	for _, slices := range []int{4, 16} {
		b.Run(fmt.Sprintf("slices=%d", slices), func(b *testing.B) {
			for _, every := range []int{8, 64} {
				b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
					cfg := DefaultConfig()
					cfg.MaxPatternEdges = 4
					cfg.VirtualStreams = 59
					cfg.TopK = 0 // windowing requires top-k off
					safe, err := NewSafe(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if err := safe.EnableWindow(WindowPolicy{
						Slices:     slices,
						SliceTrees: every,
						// Rebuild only on seal, so cadence — not the
						// incremental-refresh default — sets merge frequency.
						RefreshEveryTrees: -1,
					}); err != nil {
						b.Fatal(err)
					}
					defer safe.DisableWindow()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := safe.AddTree(trees[i%len(trees)]); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

var (
	sinkU64 uint64
	sinkBig interface{}
)
