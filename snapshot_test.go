package sketchtree

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// snapTree builds a small tree whose shape varies with i, so different
// trees contribute different patterns.
func snapTree(i int) *Tree {
	labels := []string{"B", "C", "D"}
	root := Pattern("A", Pattern(labels[i%3]))
	if i%2 == 0 {
		root.Children = append(root.Children, Pattern("C"))
	}
	return NewTree(root)
}

func snapQueries() []*Node {
	return []*Node{
		Pattern("A", Pattern("B")),
		Pattern("A", Pattern("C")),
		Pattern("A", Pattern("B"), Pattern("C")),
		Pattern("A", Pattern("D"), Pattern("C")),
	}
}

func TestSketchTreeSnapshotBitIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 5
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := st.AddTree(snapTree(i)); err != nil {
			t.Fatal(err)
		}
	}
	sn, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range snapQueries() {
		want, err1 := st.CountOrdered(q)
		got, err2 := sn.CountOrdered(q)
		if err1 != nil || err2 != nil || want != got {
			t.Errorf("ordered %v: snapshot %v != live %v (errs %v/%v)", q, got, want, err1, err2)
		}
		we, err1 := st.CountUnorderedWithError(q)
		ge, err2 := sn.CountUnorderedWithError(q)
		if err1 != nil || err2 != nil || we != ge {
			t.Errorf("unordered %v: snapshot %+v != live %+v", q, ge, we)
		}
	}
	// The snapshot is frozen: updating the live synopsis must not move
	// its answers.
	q := Pattern("A", Pattern("B"))
	before, _ := sn.CountOrdered(q)
	for i := 0; i < 20; i++ {
		if err := st.AddTree(NewTree(Pattern("A", Pattern("B")))); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := sn.CountOrdered(q)
	if before != after {
		t.Fatalf("snapshot drifted after live updates: %v -> %v", before, after)
	}
}

func TestSafeSnapshotServingIdentity(t *testing.T) {
	cfg := testConfig()
	s, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.AddTree(snapTree(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Reference answers from the locked path, before snapshots exist.
	type ref struct {
		ordered   float64
		unordered Estimate
	}
	refs := make([]ref, 0, 4)
	for _, q := range snapQueries() {
		o, err := s.CountOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		u, err := s.CountUnorderedWithError(q)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref{o, u})
	}
	if _, _, ok := s.SnapshotStats(); ok {
		t.Fatal("snapshot stats should be unavailable before EnableSnapshots")
	}
	if err := s.EnableSnapshots(SnapshotPolicy{EveryTrees: 10}); err != nil {
		t.Fatal(err)
	}
	defer s.DisableSnapshots()
	if err := s.EnableSnapshots(SnapshotPolicy{}); err == nil {
		t.Fatal("double EnableSnapshots should error")
	}
	trees, _, ok := s.SnapshotStats()
	if !ok || trees != 30 {
		t.Fatalf("SnapshotStats = %d, %v; want 30, true", trees, ok)
	}
	// The quiescent snapshot must answer bit-identically to the locked
	// path.
	for i, q := range snapQueries() {
		o, err := s.CountOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		if o != refs[i].ordered {
			t.Errorf("ordered %v: snapshot path %v != locked path %v", q, o, refs[i].ordered)
		}
		u, err := s.CountUnorderedWithError(q)
		if err != nil {
			t.Fatal(err)
		}
		if u != refs[i].unordered {
			t.Errorf("unordered %v: snapshot path %+v != locked path %+v", q, u, refs[i].unordered)
		}
	}
}

// TestSafeSnapshotRefreshPolicy checks the EveryTrees staleness bound:
// answers lag until the Nth update, then jump to the refreshed state.
func TestSafeSnapshotRefreshPolicy(t *testing.T) {
	s, err := NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTree(Pattern("A", Pattern("B")))
	q := Pattern("A", Pattern("B"))
	if err := s.AddTree(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableSnapshots(SnapshotPolicy{EveryTrees: 5}); err != nil {
		t.Fatal(err)
	}
	defer s.DisableSnapshots()
	base, err := s.CountOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	// 4 updates: below the refresh threshold, the snapshot still serves
	// the old answer.
	for i := 0; i < 4; i++ {
		if err := s.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := s.CountOrdered(q); got != base {
		t.Fatalf("answer moved before the policy allowed: %v -> %v", base, got)
	}
	// The 5th update triggers the refresh.
	if err := s.AddTree(tr); err != nil {
		t.Fatal(err)
	}
	got, err := s.CountOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if got == base {
		t.Fatalf("answer did not refresh after EveryTrees updates (still %v)", got)
	}
	trees, _, ok := s.SnapshotStats()
	if !ok || trees != 6 {
		t.Fatalf("SnapshotStats trees = %d, %v; want 6, true", trees, ok)
	}
	// RefreshSnapshot exposes new state immediately.
	if err := s.AddTree(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.RefreshSnapshot(); err != nil {
		t.Fatal(err)
	}
	if trees, _, _ := s.SnapshotStats(); trees != 7 {
		t.Fatalf("RefreshSnapshot did not advance provenance: %d trees", trees)
	}
	s.DisableSnapshots()
	if _, _, ok := s.SnapshotStats(); ok {
		t.Fatal("SnapshotStats should be unavailable after DisableSnapshots")
	}
	if err := s.RefreshSnapshot(); err == nil {
		t.Fatal("RefreshSnapshot should error when snapshots are off")
	}
	// Reads fall back to the locked path (and still work).
	if _, err := s.CountOrdered(q); err != nil {
		t.Fatal(err)
	}
}

// TestSafeSnapshotMaxAge checks the background refresher publishes
// pending updates without further update traffic.
func TestSafeSnapshotMaxAge(t *testing.T) {
	s, err := NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTree(Pattern("A", Pattern("B")))
	if err := s.AddTree(tr); err != nil {
		t.Fatal(err)
	}
	pol := SnapshotPolicy{EveryTrees: 1 << 30, MaxAge: 10 * time.Millisecond}
	if err := s.EnableSnapshots(pol); err != nil {
		t.Fatal(err)
	}
	defer s.DisableSnapshots()
	// One update, far below EveryTrees; only the timer can publish it.
	if err := s.AddTree(tr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if trees, _, _ := s.SnapshotStats(); trees == 2 {
			break
		}
		if time.Now().After(deadline) {
			trees, _, _ := s.SnapshotStats()
			t.Fatalf("MaxAge refresher never published the update (snapshot at %d trees)", trees)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSafeSnapshotReadsNotBlockedByWriter holds the update lock and
// checks a snapshot-path query still answers — the core non-blocking
// guarantee of snapshot serving.
func TestSafeSnapshotReadsNotBlockedByWriter(t *testing.T) {
	s, err := NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTree(NewTree(Pattern("A", Pattern("B")))); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableSnapshots(SnapshotPolicy{EveryTrees: 100}); err != nil {
		t.Fatal(err)
	}
	defer s.DisableSnapshots()
	s.mu.Lock() // simulate an in-flight update holding the write lock
	done := make(chan float64, 1)
	go func() {
		v, err := s.CountOrdered(Pattern("A", Pattern("B")))
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Error("snapshot-path query blocked behind the write lock")
	}
	s.mu.Unlock()
}

// TestSafeSnapshotStress mixes updates, deletions, merges, stats reads
// and snapshot-path queries across goroutines; run with -race. After
// quiescing and refreshing, the snapshot path must agree bit-for-bit
// with the locked path.
func TestSafeSnapshotStress(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 0 // Merge requires top-k tracking off
	s, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.AddTree(snapTree(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.EnableSnapshots(SnapshotPolicy{EveryTrees: 7, MaxAge: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer s.DisableSnapshots()

	const (
		writers = 2
		readers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				switch rng.Intn(10) {
				case 0: // deletion of a tree shape that was added at setup
					if err := s.RemoveTree(snapTree(rng.Intn(20))); err != nil {
						fail("RemoveTree: %v", err)
						return
					}
				case 1: // merge a small side synopsis
					side, err := New(cfg)
					if err != nil {
						fail("New: %v", err)
						return
					}
					if err := side.AddTree(snapTree(rng.Intn(100))); err != nil {
						fail("side AddTree: %v", err)
						return
					}
					if err := s.Merge(side); err != nil {
						fail("Merge: %v", err)
						return
					}
				default:
					if err := s.AddTree(snapTree(rng.Intn(100))); err != nil {
						fail("AddTree: %v", err)
						return
					}
				}
			}
		}(w)
	}
	queries := snapQueries()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(r+i)%len(queries)]
				if _, err := s.CountOrdered(q); err != nil {
					fail("CountOrdered: %v", err)
					return
				}
				if _, err := s.CountUnorderedWithError(q); err != nil {
					fail("CountUnorderedWithError: %v", err)
					return
				}
				if i%10 == 0 {
					_ = s.Stats()
					_, _, _ = s.SnapshotStats()
					_ = s.EstimateSelfJoinSize(false)
				}
			}
		}(r)
	}
	wg.Wait()
	if failed.Load() {
		return
	}

	// Quiesce, force a refresh, and check the snapshot path is now
	// bit-identical to the locked path.
	if err := s.RefreshSnapshot(); err != nil {
		t.Fatal(err)
	}
	sn := s.SnapshotTree()
	if sn == nil {
		t.Fatal("no snapshot after RefreshSnapshot")
	}
	for _, q := range queries {
		want, err1 := sn.CountOrdered(q) // the path Safe reads serve from
		s.mu.RLock()
		got, err2 := s.st.CountOrdered(q) // the locked path, directly
		s.mu.RUnlock()
		if err1 != nil || err2 != nil || want != got {
			t.Errorf("%v: snapshot %v != locked %v (errs %v/%v)", q, want, got, err1, err2)
		}
	}
	if sn.TreesProcessed() != s.TreesProcessed() {
		t.Errorf("snapshot trees %d != live %d after refresh",
			sn.TreesProcessed(), s.TreesProcessed())
	}
}

// TestSafeSnapshotChurnUnderIngest cycles EnableSnapshots and
// DisableSnapshots while writers keep ingesting and readers keep
// querying — the operational pattern of flipping snapshot serving on a
// live daemon. Run with -race; it also checks the MaxAge refresher
// goroutines are joined rather than leaked across cycles.
func TestSafeSnapshotChurnUnderIngest(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 0
	s, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.AddTree(snapTree(i)); err != nil {
			t.Fatal(err)
		}
	}
	base := runtime.NumGoroutine()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.AddTree(snapTree(w*1000 + i)); err != nil {
					fail("AddTree: %v", err)
					return
				}
			}
		}(w)
	}
	queries := snapQueries()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.CountOrdered(queries[i%len(queries)]); err != nil {
					fail("CountOrdered: %v", err)
					return
				}
			}
		}(r)
	}

	// The churn loop: a tight refresh policy (every update, plus a
	// MaxAge refresher goroutine per cycle) maximizes the surface for
	// double-close and leaked-refresher bugs.
	pol := SnapshotPolicy{EveryTrees: 1, MaxAge: time.Millisecond}
	for i := 0; i < 200 && !failed.Load(); i++ {
		if err := s.EnableSnapshots(pol); err != nil {
			fail("EnableSnapshots cycle %d: %v", i, err)
			break
		}
		if i%3 == 0 {
			// Let the refresher run at least once on some cycles.
			time.Sleep(time.Millisecond)
		}
		s.DisableSnapshots()
	}
	close(stop)
	wg.Wait()

	// Disabling is idempotent even after the churn.
	s.DisableSnapshots()
	if _, _, ok := s.SnapshotStats(); ok {
		t.Error("snapshot serving still on after final Disable")
	}

	// Every MaxAge refresher must be joined: allow brief settling, then
	// demand the goroutine count returns near the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after snapshot churn: %d -> %d\n%s",
			base, n, buf[:runtime.Stack(buf, true)])
	}

	// The synopsis is still coherent: counts answer without error and
	// TreesProcessed reflects every concurrent AddTree.
	if n := s.TreesProcessed(); n < 10 {
		t.Errorf("TreesProcessed = %d after churn, want >= 10", n)
	}
	if _, err := s.CountOrdered(queries[0]); err != nil {
		t.Errorf("CountOrdered after churn: %v", err)
	}
}
