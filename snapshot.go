package sketchtree

import (
	"fmt"
	"time"

	"sketchtree/internal/obs"
)

// SnapshotPolicy configures Safe snapshot serving: how often the
// frozen read snapshot is refreshed from the live synopsis.
type SnapshotPolicy struct {
	// EveryTrees refreshes the snapshot after this many synopsis
	// updates (AddTree, RemoveTree or Merge calls). 0 selects
	// DefaultSnapshotEveryTrees; the bound is exact — a served answer is
	// never more than EveryTrees updates behind the live synopsis.
	EveryTrees int

	// MaxAge additionally refreshes the snapshot in the background at
	// this period while updates have occurred since the last refresh,
	// so a stalled stream still converges to the live state. 0 disables
	// the timer (refreshes happen only on the update path and via
	// RefreshSnapshot).
	MaxAge time.Duration
}

// DefaultSnapshotEveryTrees is the refresh interval selected by a zero
// SnapshotPolicy.EveryTrees.
const DefaultSnapshotEveryTrees = 1000

// snapState is one published snapshot: the frozen synopsis plus its
// provenance (tree count and wall time at refresh).
type snapState struct {
	st    *SketchTree
	trees int64
	taken time.Time
}

// EnableSnapshots switches Safe into snapshot-isolated query serving:
// a frozen deep copy of the synopsis is published behind an atomic
// pointer and refreshed per the policy, and every Count*/Estimate*
// read is answered lock-free from the current snapshot — queries never
// block behind an in-flight update, and updates never wait for
// queries. Ingestion pays the refresh cost (one synopsis copy every
// EveryTrees updates).
//
// Answers are bit-identical to the locked path evaluated at the
// snapshot's refresh point; the staleness bound is EveryTrees updates
// (or MaxAge, whichever refresh fires first). Reads that inspect the
// live update state — Stats, HealthReport, AuditReport,
// FrequentPatterns, TreesProcessed, MarshalBinary — keep their
// existing locking semantics.
//
// Serving is opt-in and off by default. Enabling twice is an error;
// call DisableSnapshots first to change the policy.
func (s *Safe) EnableSnapshots(p SnapshotPolicy) error {
	if p.EveryTrees < 0 {
		return fmt.Errorf("sketchtree: SnapshotPolicy.EveryTrees %d < 0", p.EveryTrees)
	}
	if p.MaxAge < 0 {
		return fmt.Errorf("sketchtree: SnapshotPolicy.MaxAge %v < 0", p.MaxAge)
	}
	if p.EveryTrees == 0 {
		p.EveryTrees = DefaultSnapshotEveryTrees
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapEvery.Load() != 0 {
		return fmt.Errorf("sketchtree: snapshots already enabled")
	}
	if s.win.Load() != nil {
		return fmt.Errorf("sketchtree: snapshot serving and window serving are mutually exclusive (the window publishes its own merged snapshot)")
	}
	s.mu.RLock()
	err := s.refreshLocked()
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	s.snapEvery.Store(int64(p.EveryTrees))
	if p.MaxAge > 0 {
		stop, done := make(chan struct{}), make(chan struct{})
		s.snapStop, s.snapDone = stop, done
		go s.refreshLoop(p.MaxAge, stop, done)
	}
	return nil
}

// DisableSnapshots stops snapshot serving: the background refresher
// (if any) is joined, the snapshot is released, and reads return to
// the locked path. A no-op when snapshots are not enabled.
func (s *Safe) DisableSnapshots() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapEvery.Swap(0) == 0 {
		return
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
		s.snapStop, s.snapDone = nil, nil
	}
	s.snap.Store(nil)
}

// RefreshSnapshot rebuilds the served snapshot from the live synopsis
// immediately, under the read lock (it waits for an in-flight update
// but not for other readers). Useful after a bulk load to expose the
// new state without waiting out the policy.
func (s *Safe) RefreshSnapshot() error {
	if s.snapEvery.Load() == 0 {
		return fmt.Errorf("sketchtree: snapshots not enabled")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refreshLocked()
}

// SnapshotTree returns the frozen synopsis currently serving reads, or
// nil when snapshot serving is off. The returned SketchTree never
// changes and is safe for concurrent queries; callers can pin it to
// answer a batch of queries against one consistent state.
func (s *Safe) SnapshotTree() *SketchTree { return s.snapshotTree() }

// SnapshotStats reports the served snapshot's provenance: the number
// of trees it covers and its age. While the window is enabled it
// reports the published merged window (which serves reads through the
// same frozen-state path). ok is false when neither is on.
func (s *Safe) SnapshotStats() (trees int64, age time.Duration, ok bool) {
	if w := s.win.Load(); w != nil {
		if m := w.Merged(); m != nil {
			return m.Trees, time.Since(m.Built), true
		}
		return 0, 0, false
	}
	if s.snapEvery.Load() == 0 {
		return 0, 0, false
	}
	sn := s.snap.Load()
	if sn == nil {
		return 0, 0, false
	}
	return sn.trees, time.Since(sn.taken), true
}

// snapshotTree gates the lock-free read path: non-nil only while
// snapshot serving or window serving is enabled and a frozen state is
// published. The two modes are mutually exclusive, so at most one
// branch fires.
func (s *Safe) snapshotTree() *SketchTree {
	if st := s.windowTree(); st != nil {
		return st
	}
	if s.snapEvery.Load() == 0 {
		return nil
	}
	if sn := s.snap.Load(); sn != nil {
		return sn.st
	}
	return nil
}

// refreshLocked publishes a fresh snapshot. The caller must hold mu
// (read or write), which serializes it against updates.
func (s *Safe) refreshLocked() error {
	m := s.st.e.Metrics()
	start := m.Now()
	sn, err := s.st.Snapshot()
	if err != nil {
		return err
	}
	s.updatesSince.Store(0)
	s.snap.Store(&snapState{st: sn, trees: sn.TreesProcessed(), taken: time.Now()})
	m.StageSince(obs.StagePublish, start)
	return nil
}

// noteUpdateLocked ticks the update counter and refreshes the snapshot
// when the policy's EveryTrees bound is reached. The caller holds the
// write lock. A refresh error keeps the previous snapshot serving (the
// staleness bound degrades to the next successful refresh); errors
// surface on explicit RefreshSnapshot calls.
func (s *Safe) noteUpdateLocked() {
	every := s.snapEvery.Load()
	if every == 0 {
		return
	}
	if s.updatesSince.Add(1) < every {
		return
	}
	_ = s.refreshLocked()
}

// refreshLoop is the MaxAge background refresher: while updates have
// occurred since the last refresh, it rebuilds the snapshot each
// period, so a paused stream's tail becomes visible without waiting
// for EveryTrees more updates.
func (s *Safe) refreshLoop(age time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(age)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if s.updatesSince.Load() == 0 {
				continue
			}
			s.mu.RLock()
			_ = s.refreshLocked()
			s.mu.RUnlock()
		}
	}
}
