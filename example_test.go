package sketchtree_test

import (
	"fmt"
	"strings"

	"sketchtree"
)

// exampleConfig pins every random choice so outputs are reproducible.
func exampleConfig() sketchtree.Config {
	cfg := sketchtree.DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 60
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.Seed = 7
	return cfg
}

func ExampleSketchTree_CountOrdered() {
	st, _ := sketchtree.New(exampleConfig())
	docs := []string{
		"<order><customer/><item/></order>",
		"<order><customer/><item/><item/></order>",
		"<order><item/><customer/></order>",
	}
	for _, d := range docs {
		st.AddXML(strings.NewReader(d))
	}
	q := sketchtree.Pattern("order",
		sketchtree.Pattern("customer"), sketchtree.Pattern("item"))
	est, _ := st.CountOrdered(q)
	fmt.Printf("customer before item: %.0f\n", est)
	// Output:
	// customer before item: 3
}

func ExampleSketchTree_CountUnordered() {
	st, _ := sketchtree.New(exampleConfig())
	st.AddXML(strings.NewReader("<a><b/><c/></a>"))
	st.AddXML(strings.NewReader("<a><c/><b/></a>"))
	q := sketchtree.Pattern("a", sketchtree.Pattern("b"), sketchtree.Pattern("c"))
	ordered, _ := st.CountOrdered(q)
	unordered, _ := st.CountUnordered(q)
	fmt.Printf("ordered: %.0f, unordered: %.0f\n", ordered, unordered)
	// Output:
	// ordered: 1, unordered: 2
}

func ExampleParsePath() {
	q, _ := sketchtree.ParsePath("dblp//author/*")
	fmt.Println(q.Label, q.Children[0].Label, q.Children[0].Desc, q.Children[0].Children[0].Label)
	// Output:
	// dblp author true *
}

func ExampleSketchTree_CountExtended() {
	cfg := exampleConfig()
	cfg.BuildSummary = true
	st, _ := sketchtree.New(cfg)
	for i := 0; i < 5; i++ {
		st.AddXML(strings.NewReader("<a><b><c/></b></a>"))
	}
	q, _ := sketchtree.ParsePath("a//c")
	est, truncated, _ := st.CountExtended(q)
	fmt.Printf("a//c: %.0f (truncated: %v)\n", est, truncated)
	// Output:
	// a//c: 5 (truncated: false)
}

func ExampleSketchTree_EstimateExpression() {
	cfg := exampleConfig()
	cfg.Independence = 6 // products need k-wise ξ
	st, _ := sketchtree.New(cfg)
	for i := 0; i < 10; i++ {
		st.AddXML(strings.NewReader("<s><np/><vp/></s>"))
	}
	np := sketchtree.Pattern("s", sketchtree.Pattern("np"))
	vp := sketchtree.Pattern("s", sketchtree.Pattern("vp"))
	// COUNT(s/np) × COUNT(s/vp) with one unbiased estimator.
	est, _ := st.EstimateExpression(
		sketchtree.Mul(sketchtree.Count(np), sketchtree.Count(vp)))
	// An estimate near the true value 10 × 10 = 100 (deterministic for
	// the fixed seed).
	fmt.Printf("product: %.0f\n", est)
	// Output:
	// product: 93
}

func ExampleSketchTree_Merge() {
	cfg := exampleConfig()
	shard1, _ := sketchtree.New(cfg)
	shard2, _ := sketchtree.New(cfg) // same Config (and Seed) — mergeable
	shard1.AddXML(strings.NewReader("<a><b/></a>"))
	shard2.AddXML(strings.NewReader("<a><b/></a>"))
	shard1.Merge(shard2)
	est, _ := shard1.CountOrdered(sketchtree.Pattern("a", sketchtree.Pattern("b")))
	fmt.Printf("merged: %.0f\n", est)
	// Output:
	// merged: 2
}

func ExampleSketchTree_Save() {
	st, _ := sketchtree.New(exampleConfig())
	st.AddXML(strings.NewReader("<a><b/></a>"))

	// Checkpoint the synopsis and resume it elsewhere; estimates are
	// bit-identical because all randomized state is serialized.
	var buf strings.Builder
	st.Save(&buf)
	resumed, _ := sketchtree.Load(strings.NewReader(buf.String()))

	q := sketchtree.Pattern("a", sketchtree.Pattern("b"))
	a, _ := st.CountOrdered(q)
	b, _ := resumed.CountOrdered(q)
	fmt.Println(a == b)
	// Output:
	// true
}

func ExampleSketchTree_CountAlternatives() {
	st, _ := sketchtree.New(exampleConfig())
	st.AddXML(strings.NewReader("<vp><vbd/><np/></vp>"))
	st.AddXML(strings.NewReader("<vp><vbz/><np/></vp>"))
	st.AddXML(strings.NewReader("<vp><md/><np/></vp>"))

	// The paper's Example 5 OR predicate: one '|' label expands into a
	// set of distinct patterns answered by the set estimator.
	q := sketchtree.Pattern("vp", sketchtree.Pattern("vbd|vbz"), sketchtree.Pattern("np"))
	est, _ := st.CountAlternatives(q)
	fmt.Printf("%.0f\n", est)
	// Output:
	// 2
}
