package sketchtree

import (
	"strings"
	"testing"
)

// FuzzWindowAdvance drives a windowed Safe through an arbitrary
// op sequence decoded from the fuzz input — policy from the first two
// bytes, then one operation per byte (ingest, manual advance, refresh,
// query, stats) — and checks the ring invariants after every step:
// never a panic, never a negative slice count, the live slice count
// within [1, Slices], LiveTrees equal to the per-slice sum, and the
// published merge never covering more trees than were ever added.
func FuzzWindowAdvance(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x03, 0x02, 0, 0, 0, 1, 0, 2, 0, 0, 3})
	f.Add([]byte{0x01, 0x01, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0xff, 0xff, 0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4})

	f.Fuzz(func(t *testing.T, in []byte) {
		pol := WindowPolicy{Slices: 1, RefreshEveryTrees: -1}
		if len(in) > 0 {
			pol.Slices = 1 + int(in[0]%5)
		}
		if len(in) > 1 {
			pol.SliceTrees = int(in[1] % 7) // 0 = manual advance only
		}
		ops := in
		if len(in) > 2 {
			ops = in[2:]
		}

		cfg := DefaultConfig()
		cfg.MaxPatternEdges = 2
		cfg.S1 = 10
		cfg.S2 = 3
		cfg.VirtualStreams = 11
		cfg.TopK = 0
		cfg.Seed = 7
		safe, err := NewSafe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableWindow(pol); err != nil {
			t.Fatal(err)
		}
		defer safe.DisableWindow()

		var added int64
		check := func() {
			ws, ok := safe.WindowStats()
			if !ok {
				t.Fatal("WindowStats reported disabled while enabled")
			}
			if len(ws.Live) < 1 || len(ws.Live) > pol.Slices {
				t.Fatalf("live slices %d outside [1, %d]", len(ws.Live), pol.Slices)
			}
			var sum int64
			current := 0
			for _, sl := range ws.Live {
				if sl.Trees < 0 {
					t.Fatalf("negative slice tree count: %+v", sl)
				}
				if sl.Current {
					current++
				}
				sum += sl.Trees
			}
			if current != 1 {
				t.Fatalf("%d slices marked current, want exactly 1", current)
			}
			if sum != ws.LiveTrees {
				t.Fatalf("LiveTrees %d != Σ slices %d", ws.LiveTrees, sum)
			}
			if ws.LiveTrees > added {
				t.Fatalf("live trees %d exceed total added %d", ws.LiveTrees, added)
			}
			if ws.MergedTrees < 0 || ws.MergedTrees > added {
				t.Fatalf("merged trees %d outside [0, %d]", ws.MergedTrees, added)
			}
			if ws.Expires > ws.Advances {
				t.Fatalf("expires %d > advances %d", ws.Expires, ws.Advances)
			}
			if got := safe.TreesProcessed(); got != ws.LiveTrees {
				t.Fatalf("TreesProcessed %d != LiveTrees %d", got, ws.LiveTrees)
			}
		}

		for _, op := range ops {
			switch op % 5 {
			case 0:
				doc := windowEquivDocs[int(op/5)%len(windowEquivDocs)]
				if err := safe.AddXML(strings.NewReader(doc)); err != nil {
					t.Fatal(err)
				}
				added++
			case 1:
				if err := safe.AdvanceWindow(); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := safe.RefreshWindow(); err != nil {
					t.Fatal(err)
				}
			case 3:
				if _, err := safe.CountOrdered(Pattern("a", Pattern("b"))); err != nil {
					t.Fatal(err)
				}
			default:
				_ = safe.Stats()
			}
			check()
		}
	})
}
