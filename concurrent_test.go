package sketchtree

import (
	"io"
	"strings"
	"sync"
	"testing"
)

func TestSafeBasicFlow(t *testing.T) {
	s, err := NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ParseXMLString("<a><b/><c/></a>")
	for i := 0; i < 5; i++ {
		if err := s.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.CountOrdered(Pattern("a", Pattern("b")))
	if err != nil {
		t.Fatal(err)
	}
	if got < 2 || got > 8 {
		t.Errorf("count = %v, want ≈ 5", got)
	}
	if s.TreesProcessed() != 5 {
		t.Error("TreesProcessed wrong")
	}
	if err := s.RemoveTree(tr); err != nil {
		t.Fatal(err)
	}
	if s.TreesProcessed() != 4 {
		t.Error("RemoveTree not reflected")
	}
	if s.MemoryBytes().Total() <= 0 {
		t.Error("memory accounting broken")
	}
	if _, err := NewSafe(Config{}); err == nil {
		t.Error("invalid config must fail")
	}
}

// Run with -race: concurrent updates and a full mix of query kinds.
func TestSafeConcurrentUpdatesAndQueries(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 5
	cfg.BuildSummary = true
	cfg.Independence = 6
	s, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		"<a><b/><c/></a>",
		"<a><b/><b/></a>",
		"<x><y><z/></y></x>",
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				tr, err := ParseXMLString(docs[(w+i)%len(docs)])
				if err != nil {
					t.Error(err)
					return
				}
				if err := s.AddTree(tr); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qb := Pattern("a", Pattern("b"))
			qc := Pattern("a", Pattern("c"))
			ext, _ := ParsePath("x//z")
			for i := 0; i < 30; i++ {
				switch i % 5 {
				case 0:
					s.CountOrdered(qb)
				case 1:
					s.CountUnordered(Pattern("a", Pattern("b"), Pattern("c")))
				case 2:
					s.CountOrderedSet([]*Node{qb, qc})
				case 3:
					s.EstimateExpression(Mul(Count(qb), Count(qc)))
				case 4:
					s.CountExtended(ext)
				}
				s.FrequentPatterns()
				s.PatternsProcessed()
			}
		}(w)
	}
	wg.Wait()
	if s.TreesProcessed() != 120 {
		t.Errorf("TreesProcessed = %d, want 120", s.TreesProcessed())
	}
}

// Run with -race: the wrappers added for the Safe API-gap fix (AddXML,
// AddXMLForest, Merge, CountAlternatives, CountOrderedUpperBound,
// EstimateSelfJoinSize, Config, Save) hammered from concurrent
// writers and readers.
func TestSafeNewWrappersConcurrent(t *testing.T) {
	cfg := testConfig() // TopK = 0 so Merge is legal
	s, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	var wg sync.WaitGroup

	// Writers: XML ingestion and shard fan-in.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.AddXML(strings.NewReader("<a><b/><c/></a>")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			doc := "<r><a><b/></a><x><y/></x></r>"
			if err := s.AddXMLForest(strings.NewReader(doc)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			shard, err := New(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := shard.AddXML(strings.NewReader("<a><c/><b/></a>")); err != nil {
				t.Error(err)
				return
			}
			if err := s.Merge(shard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers: the new query and introspection wrappers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deep := Pattern("a", Pattern("b", Pattern("c", Pattern("d", Pattern("e")))))
			for i := 0; i < rounds; i++ {
				if _, err := s.CountAlternatives(Pattern("a", Pattern("b|c"))); err != nil {
					t.Error(err)
					return
				}
				// 4 edges > MaxPatternEdges 3: exercises the bound path.
				if _, err := s.CountOrderedUpperBound(deep); err != nil {
					t.Error(err)
					return
				}
				s.EstimateSelfJoinSize(i%2 == 0)
				if got := s.Config(); got.MaxPatternEdges != 3 {
					t.Errorf("Config.MaxPatternEdges = %d", got.MaxPatternEdges)
					return
				}
				if err := s.Save(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// 1 (AddXML) + 2 (forest) + 1 (merged shard) trees per round.
	if got := s.TreesProcessed(); got != 4*rounds {
		t.Errorf("TreesProcessed = %d, want %d", got, 4*rounds)
	}
}

func TestSafeSnapshotRoundTrip(t *testing.T) {
	s, err := NewSafe(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ParseXMLString("<a><b/></a>")
	for i := 0; i < 7; i++ {
		s.AddTree(tr)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSafe(data)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.CountOrdered(Pattern("a", Pattern("b")))
	b, _ := r.CountOrdered(Pattern("a", Pattern("b")))
	if a != b {
		t.Errorf("restored safe sketch differs: %v vs %v", b, a)
	}
	if _, err := RestoreSafe([]byte("junk")); err == nil {
		t.Error("junk must fail")
	}
}
