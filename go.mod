module sketchtree

go 1.22
