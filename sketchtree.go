package sketchtree

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sketchtree/internal/audit"
	"sketchtree/internal/core"
	"sketchtree/internal/obs"
	"sketchtree/internal/summary"
	"sketchtree/internal/tree"
)

// Tree is an ordered labeled tree — one element of the stream.
type Tree = tree.Tree

// Node is a single node of a Tree or of a query pattern.
type Node = tree.Node

// Config configures a SketchTree instance; see the field documentation
// on core.Config re-exported here. Zero fields are filled with
// defaults where meaningful; use DefaultConfig as the starting point.
type Config = core.Config

// Memory is the synopsis footprint breakdown.
type Memory = core.Memory

// TopKProbabilityNever is the Config.TopKProbability sentinel that
// disables per-pattern top-k processing entirely (the field's zero
// value selects the default probability 1.0 instead).
const TopKProbabilityNever = core.TopKProbabilityNever

// DefaultPlanCacheSize is the query-plan cache capacity selected by a
// zero Config.PlanCacheSize.
const DefaultPlanCacheSize = core.DefaultPlanCacheSize

// PlanCacheDisabled is the Config.PlanCacheSize sentinel that disables
// query-plan caching (the field's zero value selects the default
// capacity instead).
const PlanCacheDisabled = core.PlanCacheDisabled

// DefaultConfig mirrors the paper's common experimental setup: k = 4,
// s1 = 25, s2 = 7 (δ = 0.1), 229 virtual streams, top-50 tracking,
// four-wise ξ, degree-61 fingerprints.
func DefaultConfig() Config { return core.DefaultConfig() }

// Pattern builds a labeled tree node: Pattern("A", Pattern("B")) is
// the pattern A with child B. Used for both data trees and queries.
func Pattern(label string, children ...*Node) *Node {
	return tree.New(label, children...)
}

// NewTree wraps a root node as a stream element.
func NewTree(root *Node) *Tree { return tree.NewTree(root) }

// ParsePattern parses the S-expression form of a pattern, e.g.
// "(A (B) (C (D)))".
func ParsePattern(s string) (*Node, error) {
	t, err := tree.ParseSexp(s)
	if err != nil {
		return nil, err
	}
	return t.Root, nil
}

// ParseXML reads one XML document as a labeled tree: element names and
// non-whitespace character data become node labels, attributes are
// ignored (the paper's convention).
func ParseXML(r io.Reader) (*Tree, error) {
	return tree.ParseXML(r, tree.DefaultXMLOptions())
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Tree, error) {
	return tree.ParseXMLString(s, tree.DefaultXMLOptions())
}

// StreamXMLForest parses one large XML document, strips its root tag,
// and invokes fn for each root-child subtree — the paper's
// construction of a tree stream from a monolithic dataset file.
func StreamXMLForest(r io.Reader, fn func(*Tree) error) error {
	return tree.StreamForest(r, tree.DefaultXMLOptions(), fn)
}

// SketchTree is the streaming synopsis plus its query interface. It is
// not safe for concurrent use; wrap with a mutex if updates and
// queries race.
type SketchTree struct {
	e *core.Engine
}

// New creates a SketchTree with the given configuration.
func New(cfg Config) (*SketchTree, error) {
	e, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &SketchTree{e: e}, nil
}

// AddTree folds one tree of the stream into the synopsis.
func (s *SketchTree) AddTree(t *Tree) error { return s.e.AddTree(t) }

// AddXML parses one XML document and folds it into the synopsis.
func (s *SketchTree) AddXML(r io.Reader) error {
	m := s.e.Metrics()
	start := m.Now()
	t, err := ParseXML(r)
	m.StageSince(obs.StageParse, start)
	if err != nil {
		return err
	}
	return s.AddTree(t)
}

// AddXMLForest streams every tree of a rooted XML forest document into
// the synopsis.
func (s *SketchTree) AddXMLForest(r io.Reader) error {
	return streamForestTimed(s.e.Metrics(), r, s.AddTree)
}

// streamForestTimed runs StreamXMLForest, attributing the decode time
// (total wall time minus the sink's share) to the parse stage. With
// timers off it degenerates to the plain stream — no clock calls.
func streamForestTimed(m *obs.Metrics, r io.Reader, sink func(*Tree) error) error {
	if !m.TimersOn() {
		return StreamXMLForest(r, sink)
	}
	start := time.Now()
	var sinkNanos, n int64
	err := StreamXMLForest(r, func(t *Tree) error {
		n++
		s := time.Now()
		err := sink(t)
		sinkNanos += time.Since(s).Nanoseconds()
		return err
	})
	m.StageAdd(obs.StageParse, n, time.Since(start).Nanoseconds()-sinkNanos)
	return err
}

// CountOrdered estimates COUNT_ord(Q): the number of ordered
// occurrences of the pattern in the stream so far. The pattern must
// have between 1 and Config.MaxPatternEdges edges.
func (s *SketchTree) CountOrdered(q *Node) (float64, error) {
	return s.e.EstimateOrdered(q)
}

// CountUnordered estimates COUNT(Q): occurrences under any sibling
// order (the total over all distinct ordered arrangements of Q).
func (s *SketchTree) CountUnordered(q *Node) (float64, error) {
	return s.e.EstimateUnordered(q)
}

// CountOrderedSet estimates the total frequency of a set of distinct
// patterns with the Theorem-2 estimator, tighter than summing
// individual estimates.
func (s *SketchTree) CountOrderedSet(qs []*Node) (float64, error) {
	return s.e.EstimateOrderedSet(qs)
}

// Estimate is a pattern-count estimate with an error bar: the usual
// point estimate plus a standard error and 95% confidence interval
// derived from the sketch itself — the empirical spread of the s2
// independent row means, capped by the paper's a-priori variance bound
// at the estimated self-join size.
type Estimate = core.Estimate

// CountOrderedWithError is CountOrdered with an error bar. The Value
// field equals what CountOrdered returns for the same pattern and
// synopsis state.
func (s *SketchTree) CountOrderedWithError(q *Node) (Estimate, error) {
	return s.e.EstimateOrderedWithError(q)
}

// CountUnorderedWithError is CountUnordered with an error bar.
func (s *SketchTree) CountUnorderedWithError(q *Node) (Estimate, error) {
	return s.e.EstimateUnorderedWithError(q)
}

// CountOrderedSetWithError is CountOrderedSet with an error bar
// (Equation 7's set-estimator variance bound).
func (s *SketchTree) CountOrderedSetWithError(qs []*Node) (Estimate, error) {
	return s.e.EstimateOrderedSetWithError(qs)
}

// Expr is a query expression over pattern counts built from Count,
// Add, Sub and Mul.
type Expr = core.Expr

// Count is the COUNT_ord(Q) expression terminal.
func Count(q *Node) Expr { return core.CountOf{Pattern: q} }

// Add is the expression l + r.
func Add(l, r Expr) Expr { return core.ExprAdd{L: l, R: r} }

// Sub is the expression l − r.
func Sub(l, r Expr) Expr { return core.ExprSub{L: l, R: r} }

// Mul is the expression l × r. Product expressions of degree d require
// Config.Independence >= 2d (use 6 for pairwise products).
func Mul(l, r Expr) Expr { return core.ExprMul{L: l, R: r} }

// EstimateExpression estimates an arbitrary +, −, × expression over
// pattern counts with the paper's §4 unbiased estimator.
func (s *SketchTree) EstimateExpression(e Expr) (float64, error) {
	return s.e.EstimateExpr(e)
}

// Arrangements returns the distinct ordered arrangements of an
// unordered pattern (every permutation of every node's children,
// deduplicated). max <= 0 applies a safe default cap.
func Arrangements(q *Node, max int) ([]*Node, error) {
	return core.Arrangements(q, max)
}

// ExtQuery is a query pattern that may contain Wildcard labels and
// descendant ('//') edges; it requires Config.BuildSummary.
type ExtQuery = summary.QueryNode

// Wildcard is the label that matches any node label in an ExtQuery.
const Wildcard = summary.Wildcard

// Ext builds an extended-query node with a parent-child edge from its
// parent.
func Ext(label string, children ...*ExtQuery) *ExtQuery {
	return summary.Q(label, children...)
}

// ExtDesc builds an extended-query node whose incoming edge is '//'
// (ancestor-descendant).
func ExtDesc(label string, children ...*ExtQuery) *ExtQuery {
	return summary.QD(label, children...)
}

// CountExtended estimates the count of an extended query by resolving
// wildcards and descendant edges against the online structural summary
// (Config.BuildSummary must be set). The boolean reports truncation —
// when true the estimate may undercount because the summary was capped
// or an expansion exceeded Config.MaxPatternEdges.
func (s *SketchTree) CountExtended(q *ExtQuery) (float64, bool, error) {
	return s.e.EstimateExtended(q)
}

// ParsePath parses a compact XPath-like linear query, e.g. "A/B//C/*",
// into an extended query: '/' is parent-child, '//' is
// ancestor-descendant, '*' is the wildcard label.
func ParsePath(path string) (*ExtQuery, error) {
	if path == "" {
		return nil, fmt.Errorf("sketchtree: empty path")
	}
	path = strings.TrimPrefix(path, "/")
	var root, cur *ExtQuery
	desc := false
	for _, seg := range strings.Split(path, "/") {
		if seg == "" {
			if desc {
				return nil, fmt.Errorf("sketchtree: invalid '///' in path")
			}
			desc = true
			continue
		}
		n := &ExtQuery{Label: seg, Desc: desc}
		desc = false
		if cur == nil {
			root = n
		} else {
			cur.Children = append(cur.Children, n)
		}
		cur = n
	}
	if desc {
		return nil, fmt.Errorf("sketchtree: path ends with '//'")
	}
	if root == nil {
		return nil, fmt.Errorf("sketchtree: empty path")
	}
	return root, nil
}

// RemoveTree deletes one earlier occurrence of the tree from the
// synopsis (the AMS deletion property). Useful for sliding windows and
// revoked documents; see examples/monitoring.
func (s *SketchTree) RemoveTree(t *Tree) error { return s.e.RemoveTree(t) }

// Snapshot deep-copies the synopsis into an independent frozen
// SketchTree. The snapshot answers every estimator bit-identically to
// the receiver at snapshot time, never changes, and — because the
// query path is a pure read — may be queried from any number of
// goroutines concurrently without locking. The receiver must not be
// updated while Snapshot runs (Safe serializes this for you and keeps
// an automatically refreshed snapshot; see Safe.EnableSnapshots).
//
// Immutable state (random seeds, the fingerprint modulus, the
// query-plan cache) is shared; sketch counters, top-k trackers, the
// structural summary and the exact baseline are copied. The
// observability counters are shared too, so queries answered by the
// snapshot still show up in the receiver's Stats. The exact-shadow
// auditor is not carried over.
//
//lint:allow safeparity Safe exposes snapshots as SnapshotTree/EnableSnapshots (atomic.Pointer refresh); a raw Snapshot wrapper would duplicate that API
func (s *SketchTree) Snapshot() (*SketchTree, error) {
	e, err := s.e.Clone()
	if err != nil {
		return nil, err
	}
	return &SketchTree{e: e}, nil
}

// FrequentPattern is one tracked heavy hitter: the pattern's internal
// one-dimensional value and its estimated frequency.
type FrequentPattern = core.FrequentPattern

// FrequentPatterns returns the currently tracked top-k patterns across
// all virtual streams, most frequent first (empty when Config.TopK is
// 0).
func (s *SketchTree) FrequentPatterns() []FrequentPattern {
	return s.e.FrequentPatterns()
}

// EstimateSelfJoinSize estimates SJ(S) = Σ f² of the pattern stream,
// the quantity that drives estimator variance (Theorem 1). With
// compensated set, deleted top-k instances are counted back in.
func (s *SketchTree) EstimateSelfJoinSize(compensated bool) float64 {
	return s.e.EstimateSelfJoinSize(compensated)
}

// MarshalBinary serializes the complete synopsis; Restore resumes it
// with bit-identical estimates. Lets a stream processor checkpoint and
// migrate its state.
func (s *SketchTree) MarshalBinary() ([]byte, error) { return s.e.MarshalBinary() }

// Save writes the serialized synopsis to w.
func (s *SketchTree) Save(w io.Writer) error {
	data, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Restore reconstructs a SketchTree from MarshalBinary output.
func Restore(data []byte) (*SketchTree, error) {
	e, err := core.Restore(data)
	if err != nil {
		return nil, err
	}
	return &SketchTree{e: e}, nil
}

// Load reads a serialized synopsis from r.
func Load(r io.Reader) (*SketchTree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Restore(data)
}

// Merge folds another SketchTree's synopsis into this one — parallel
// ingestion: shard the stream across SketchTrees created with the same
// Config (including Seed), then merge; the result is exactly the
// synopsis of the whole stream. Top-k tracking must be disabled on
// both operands.
func (s *SketchTree) Merge(o *SketchTree) error {
	if o == nil {
		return fmt.Errorf("sketchtree: nil operand")
	}
	return s.e.Merge(o.e)
}

// CountAlternatives estimates a pattern whose labels may contain
// '|'-separated alternatives (the boolean OR of the paper's Example 5,
// e.g. Pattern("VBD|VBP|VBZ")): the pattern expands into its distinct
// plain alternatives and their total frequency is estimated with the
// set estimator.
func (s *SketchTree) CountAlternatives(q *Node) (float64, error) {
	return s.e.EstimateAlternations(q)
}

// CountOrderedUpperBound bounds COUNT_ord(Q) for patterns larger than
// Config.MaxPatternEdges using the minimum count over Q's enumerable
// sub-patterns (an upper bound up to estimation error). Patterns
// within the limit fall back to CountOrdered.
func (s *SketchTree) CountOrderedUpperBound(q *Node) (float64, error) {
	return s.e.EstimateOrderedUpperBound(q)
}

// Stats is the observability snapshot: always-on counters (trees,
// patterns, removals, queries) plus, when metrics are enabled,
// per-stage timings and the query-latency histogram. See
// EnableMetrics.
type Stats = obs.Snapshot

// StageStats is one pipeline stage's totals within Stats.
type StageStats = obs.StageSnapshot

// QueryStats is the query-side totals within Stats.
type QueryStats = obs.QuerySnapshot

// Stage indexes Stats.Stages; the instrumented stages are StageParse,
// StageEnum, StageFingerprint, StageSketch, StageTopK, StageMerge,
// StagePlan and StagePublish.
type Stage = obs.Stage

// The instrumented pipeline stages, in processing order.
const (
	StageParse       = obs.StageParse
	StageEnum        = obs.StageEnum
	StageFingerprint = obs.StageFingerprint
	StageSketch      = obs.StageSketch
	StageTopK        = obs.StageTopK
	StageMerge       = obs.StageMerge
	StagePlan        = obs.StagePlan
	StagePublish     = obs.StagePublish
)

// EnableMetrics switches stage timers and query-latency measurement on
// or off. Counters (Stats.Trees, Stats.Patterns, ...) are always
// maintained; timing costs clock reads on the update path, so it is
// opt-in and off by default — with metrics disabled the hot path sees
// no time calls, locks or allocations from instrumentation.
func (s *SketchTree) EnableMetrics(on bool) { s.e.Metrics().EnableTimers(on) }

// Stats reads the observability snapshot. Counters are atomics, so
// Stats is safe to call while updates run (unlike the rest of the
// non-Safe API) and after sequential or merged parallel ingestion it
// agrees exactly with TreesProcessed/PatternsProcessed.
func (s *SketchTree) Stats() Stats { return s.e.Stats() }

// StatsJSONHandler serves snap() as an expvar-style JSON document —
// the exposition half of the observability layer (cmd/sketchtree
// mounts it at /stats).
func StatsJSONHandler(snap func() Stats) http.Handler { return obs.JSONHandler(snap) }

// StatsPromHandler serves snap() in the Prometheus text exposition
// format (cmd/sketchtree mounts it at /metrics).
func StatsPromHandler(snap func() Stats) http.Handler { return obs.PromHandler(snap) }

// HealthStats is the sketch-health section of Stats: per-virtual-stream
// occupancy, partition skew, and top-k churn, all readable race-free.
type HealthStats = obs.HealthSnapshot

// TopKStats is the top-k churn accounting within HealthStats.
type TopKStats = obs.TopKHealth

// AuditStats is the exact-shadow audit section of Stats: sample
// occupancy plus the last audit report's relative-error quantiles.
type AuditStats = obs.AuditSnapshot

// PlanCacheStats is the query-plan cache section of Stats: capacity,
// live entries, and hit/miss counters. Nil when the cache is disabled.
type PlanCacheStats = obs.PlanCacheSnapshot

// HealthReport is the full sketch-health diagnosis: HealthStats plus
// per-partition L2 energy, the compensated self-join size, and
// human-readable warnings.
type HealthReport = core.HealthReport

// HealthReport diagnoses the synopsis. Unlike Stats it reads the
// sketch counters, so on a shared instance use Safe.HealthReport.
func (s *SketchTree) HealthReport() HealthReport { return s.e.HealthReport() }

// AuditReport is the exact-shadow auditor's accuracy summary: every
// audited pattern's exact count versus the live sketch estimate, with
// relative-error quantiles over the sample.
type AuditReport = audit.Report

// AuditedPattern is one audited pattern's ground truth versus the
// sketch estimate within an AuditReport.
type AuditedPattern = audit.PatternError

// EnableAudit attaches the exact-shadow auditor: exact counts are kept
// for a bottom-k hash sample of up to k distinct pattern values, so the
// synopsis can continuously report its own observed accuracy
// (AuditReport, Stats.Audit). Must be called before any tree is added;
// costs one hash and map probe per pattern occurrence while enabled.
// The auditor is process-local and never serialized.
func (s *SketchTree) EnableAudit(k int) error { return s.e.EnableAudit(k) }

// AuditEnabled reports whether the exact-shadow auditor is attached.
func (s *SketchTree) AuditEnabled() bool { return s.e.AuditEnabled() }

// AuditReport scores every audited pattern through the live query path
// against its exact shadow count. The report's quantiles also refresh
// the Audit section of subsequent Stats snapshots.
func (s *SketchTree) AuditReport() (AuditReport, error) { return s.e.AuditReport() }

// TreesProcessed returns the number of stream trees folded in so far.
func (s *SketchTree) TreesProcessed() int64 { return s.e.TreesProcessed() }

// PatternsProcessed returns the number of pattern occurrences
// processed (the one-dimensional stream length).
func (s *SketchTree) PatternsProcessed() int64 { return s.e.PatternsProcessed() }

// MemoryBytes reports the synopsis footprint, broken down as the paper
// accounts it.
func (s *SketchTree) MemoryBytes() Memory { return s.e.MemoryBytes() }

// Config returns the effective (normalized) configuration.
func (s *SketchTree) Config() Config { return s.e.Config() }
