package sketchtree

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// windowEquivDocs is the document pool the random interleavings draw
// from: small labeled trees with enough shape variety that slice
// contents differ.
var windowEquivDocs = []string{
	"<a><b/><c/></a>",
	"<a><b/><b/></a>",
	"<a><c/><b/></a>",
	"<a><b><d/></b></a>",
	"<d><a><b/></a></d>",
	"<a><c/><c/><b/></a>",
	"<b><d/><d/></b>",
	"<a><a><b/></a><c/></a>",
}

// windowMirror replays the Windowed engine's advance rules over plain
// document lists, so the test can compute which documents are live
// without asking the engine under test.
type windowMirror struct {
	slices     [][]string
	capacity   int
	sliceTrees int
}

func newWindowMirror(capacity, sliceTrees int) *windowMirror {
	return &windowMirror{slices: [][]string{nil}, capacity: capacity, sliceTrees: sliceTrees}
}

func (m *windowMirror) add(doc string) {
	cur := len(m.slices) - 1
	m.slices[cur] = append(m.slices[cur], doc)
	if m.sliceTrees > 0 && len(m.slices[cur]) >= m.sliceTrees {
		m.advance()
	}
}

func (m *windowMirror) advance() {
	if len(m.slices) >= m.capacity {
		m.slices = m.slices[len(m.slices)-m.capacity+1:]
	}
	m.slices = append(m.slices, nil)
}

func (m *windowMirror) live() []string {
	var out []string
	for _, sl := range m.slices {
		out = append(out, sl...)
	}
	return out
}

// TestWindowEquivalenceRandom is the windowed-vs-fresh equivalence
// suite: across 120 seeded random interleavings of AddXML, manual
// advances and queries, the merged window state must be bit-identical
// — synopsis bytes and float64 estimates compared with ==, never
// approximately — to a fresh landmark engine fed only the live-slice
// documents. This is the same determinism contract the cluster merge
// pins: AMS synopses are linear, so the cell-wise sum of the live
// slices IS the synopsis of the live documents.
func TestWindowEquivalenceRandom(t *testing.T) {
	const seeds = 120
	for seed := uint64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 0))

			cfg := testConfig()
			cfg.S1 = 40
			cfg.S2 = 5
			cfg.Seed = 1000 + seed

			pol := WindowPolicy{
				Slices:            1 + rng.IntN(4),
				RefreshEveryTrees: -1, // checkpoints call RefreshWindow explicitly
			}
			if rng.IntN(3) > 0 { // 2/3 of seeds use a count cadence
				pol.SliceTrees = 2 + rng.IntN(4)
			}

			safe, err := NewSafe(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := safe.EnableWindow(pol); err != nil {
				t.Fatal(err)
			}
			defer safe.DisableWindow()
			mirror := newWindowMirror(pol.Slices, pol.SliceTrees)

			ops := 20 + rng.IntN(25)
			for op := 0; op < ops; op++ {
				switch {
				case rng.IntN(10) < 7: // ingest
					doc := windowEquivDocs[rng.IntN(len(windowEquivDocs))]
					if err := safe.AddXML(strings.NewReader(doc)); err != nil {
						t.Fatal(err)
					}
					mirror.add(doc)
				case rng.IntN(2) == 0: // manual advance
					if err := safe.AdvanceWindow(); err != nil {
						t.Fatal(err)
					}
					mirror.advance()
				default: // checkpoint: full equivalence check mid-stream
					checkWindowEquivalence(t, safe, cfg, mirror)
				}
			}
			checkWindowEquivalence(t, safe, cfg, mirror)
		})
	}
}

// checkWindowEquivalence asserts the windowed Safe's published state is
// bit-identical to a fresh engine fed mirror's live documents.
func checkWindowEquivalence(t *testing.T, safe *Safe, cfg Config, mirror *windowMirror) {
	t.Helper()
	if err := safe.RefreshWindow(); err != nil {
		t.Fatal(err)
	}
	live := mirror.live()
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range live {
		if err := fresh.AddXML(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := safe.TreesProcessed(), fresh.TreesProcessed(); got != want {
		t.Fatalf("windowed TreesProcessed = %d, fresh fed live docs = %d", got, want)
	}
	gotBytes, err := safe.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("synopsis bytes differ after %d live docs (windowed %d bytes, fresh %d bytes)",
			len(live), len(gotBytes), len(wantBytes))
	}

	queries := []*Node{
		Pattern("a", Pattern("b")),
		Pattern("a", Pattern("c")),
		Pattern("a", Pattern("b"), Pattern("c")),
		Pattern("b", Pattern("d")),
	}
	for _, q := range queries {
		got, err := safe.CountOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.CountOrdered(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CountOrdered(%v) = %v, fresh %v (must be ==)", q, got, want)
		}
		gotU, err := safe.CountUnordered(q)
		if err != nil {
			t.Fatal(err)
		}
		wantU, err := fresh.CountUnordered(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotU != wantU {
			t.Fatalf("CountUnordered(%v) = %v, fresh %v (must be ==)", q, gotU, wantU)
		}
		gotE, err := safe.CountOrderedWithError(q)
		if err != nil {
			t.Fatal(err)
		}
		wantE, err := fresh.CountOrderedWithError(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotE.Value != wantE.Value || gotE.StdErr != wantE.StdErr || gotE.CI95 != wantE.CI95 {
			t.Fatalf("CountOrderedWithError(%v) = %+v, fresh %+v (must be ==)", q, gotE, wantE)
		}
	}
	gotSet, err := safe.CountOrderedSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	wantSet, err := fresh.CountOrderedSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	if gotSet != wantSet {
		t.Fatalf("CountOrderedSet = %v, fresh %v (must be ==)", gotSet, wantSet)
	}
}

// TestSafeWindowChurnUnderIngest hammers a windowed Safe with
// concurrent writers, readers and advance/refresh churn while the
// clock-cadence ticker runs, then checks that DisableWindow leaves no
// goroutines behind. Run under -race in CI.
func TestSafeWindowChurnUnderIngest(t *testing.T) {
	base := runtime.NumGoroutine()

	cfg := testConfig()
	cfg.S1 = 25
	cfg.S2 = 5
	safe, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := safe.EnableWindow(WindowPolicy{
		Slices:            4,
		SliceTrees:        16,
		SliceDur:          5 * time.Millisecond,
		RefreshEveryTrees: 8,
	}); err != nil {
		t.Fatal(err)
	}

	var failed atomic.Bool
	var failMsg atomic.Value
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			failMsg.Store(fmt.Sprintf(format, args...))
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				doc := windowEquivDocs[i%len(windowEquivDocs)]
				if err := safe.AddXML(strings.NewReader(doc)); err != nil {
					fail("AddXML: %v", err)
					return
				}
				i++
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := Pattern("a", Pattern("b"))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := safe.CountOrdered(q); err != nil {
					fail("CountOrdered: %v", err)
					return
				}
				if ws, ok := safe.WindowStats(); !ok {
					fail("WindowStats reported disabled mid-run")
					return
				} else if ws.LiveTrees < 0 {
					fail("negative live trees: %d", ws.LiveTrees)
					return
				}
				_ = safe.Stats()
			}
		}()
	}
	wg.Add(1)
	go func() { // advance/refresh churn alongside the ticker
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				err = safe.AdvanceWindow()
			} else {
				err = safe.RefreshWindow()
			}
			if err != nil {
				fail("churn: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	safe.DisableWindow()

	if failed.Load() {
		t.Fatal(failMsg.Load())
	}
	if safe.WindowEnabled() {
		t.Error("window still enabled after DisableWindow")
	}

	// The ticker goroutine must be joined; give the runtime a moment to
	// retire worker goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after DisableWindow: %d > %d\n%s",
			n, base+2, buf[:runtime.Stack(buf, true)])
	}
}

// TestWindowRejections pins the Enable-time validation: configurations
// that break the slice merge must be rejected with a clear error, and
// the mutually exclusive serving modes must refuse each other in both
// orders.
func TestWindowRejections(t *testing.T) {
	pol := WindowPolicy{Slices: 2, SliceTrees: 4}

	t.Run("topk", func(t *testing.T) {
		cfg := testConfig()
		cfg.TopK = 8
		safe, err := NewSafe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = safe.EnableWindow(pol)
		if err == nil {
			t.Fatal("TopK != 0 must be rejected")
		}
		if !strings.Contains(err.Error(), "TopK") {
			t.Errorf("error must name TopK: %v", err)
		}
	})

	t.Run("track-exact", func(t *testing.T) {
		cfg := testConfig()
		cfg.TrackExact = true
		safe, err := NewSafe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = safe.EnableWindow(pol)
		if err == nil {
			t.Fatal("TrackExact must be rejected")
		}
		if !strings.Contains(err.Error(), "TrackExact") {
			t.Errorf("error must name TrackExact: %v", err)
		}
	})

	t.Run("audit-then-window", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableAudit(4); err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableWindow(pol); err == nil {
			t.Fatal("attached auditor must be rejected")
		}
	})

	t.Run("window-then-audit", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableWindow(pol); err != nil {
			t.Fatal(err)
		}
		defer safe.DisableWindow()
		if err := safe.EnableAudit(4); err == nil {
			t.Fatal("EnableAudit while windowed must be rejected")
		}
	})

	t.Run("nonzero-trees", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.AddXML(strings.NewReader("<a><b/></a>")); err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableWindow(pol); err == nil {
			t.Fatal("non-empty synopsis must be rejected")
		}
	})

	t.Run("double-enable", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableWindow(pol); err != nil {
			t.Fatal(err)
		}
		defer safe.DisableWindow()
		if err := safe.EnableWindow(pol); err == nil {
			t.Fatal("double enable must be rejected")
		}
	})

	t.Run("snapshots-then-window", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableSnapshots(SnapshotPolicy{EveryTrees: 10}); err != nil {
			t.Fatal(err)
		}
		defer safe.DisableSnapshots()
		if err := safe.EnableWindow(pol); err == nil {
			t.Fatal("EnableWindow with snapshots on must be rejected")
		}
	})

	t.Run("window-then-snapshots", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.EnableWindow(pol); err != nil {
			t.Fatal(err)
		}
		defer safe.DisableWindow()
		if err := safe.EnableSnapshots(SnapshotPolicy{EveryTrees: 10}); err == nil {
			t.Fatal("EnableSnapshots with window on must be rejected")
		}
	})

	t.Run("not-enabled", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.AdvanceWindow(); err == nil {
			t.Error("AdvanceWindow without window must error")
		}
		if err := safe.RefreshWindow(); err == nil {
			t.Error("RefreshWindow without window must error")
		}
		if _, ok := safe.WindowStats(); ok {
			t.Error("WindowStats must report disabled")
		}
		safe.DisableWindow() // no-op, must not panic
	})

	t.Run("bad-policy", func(t *testing.T) {
		safe, err := NewSafe(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, bad := range []WindowPolicy{
			{Slices: 0},
			{Slices: -3},
			{Slices: 2, SliceTrees: -1},
			{Slices: 2, SliceDur: -time.Second},
		} {
			if err := safe.EnableWindow(bad); err == nil {
				t.Errorf("policy %+v must be rejected", bad)
			}
		}
	})
}
