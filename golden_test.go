package sketchtree

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden synopsis files and their expected-count
// sidecars:
//
//	go test -run TestGolden -update ./...
//
// Regenerate only when a deliberate format or estimator change makes the
// old bytes obsolete, and say so in the commit message: these files pin
// the on-disk synopsis format and the exact estimator arithmetic.
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenCase is one pinned configuration. Configs here must be
// byte-deterministic end to end; TopK and BuildSummary snapshot in
// sorted/insertion order, and since exact.Counter.ForEach iterates in
// ascending value order TrackExact is byte-deterministic too (the
// "exact" case pins that guarantee).
type goldenCase struct {
	name string
	cfg  Config
}

func goldenCases() []goldenCase {
	base := DefaultConfig()
	base.MaxPatternEdges = 3
	base.S1 = 40
	base.S2 = 5
	base.VirtualStreams = 23
	base.TopK = 0
	base.Seed = 99

	rich := base
	rich.TopK = 5
	rich.BuildSummary = true
	rich.SummaryMaxNodes = 64

	exact := base
	exact.TrackExact = true

	return []goldenCase{
		{name: "base", cfg: base},
		{name: "topk_summary", cfg: rich},
		{name: "exact", cfg: exact},
	}
}

// goldenStream is the fixed tree stream every golden synopsis ingests:
// 30 trees cycling through five shapes, including repeated subtrees so
// the top-k tracker has skew to latch onto.
func goldenStream(t *testing.T, st *SketchTree) {
	t.Helper()
	docs := []string{
		"<a><b/><c/></a>",
		"<a><b/><b/></a>",
		"<a><c/><b/></a>",
		"<a><b><d/></b></a>",
		"<d><a><b/></a></d>",
	}
	for i := 0; i < 30; i++ {
		if err := st.AddXML(strings.NewReader(docs[i%len(docs)])); err != nil {
			t.Fatalf("golden stream tree %d: %v", i, err)
		}
	}
}

// goldenQueries are the probes whose answers are pinned in the sidecar.
func goldenQueries() map[string]*Node {
	return map[string]*Node{
		"a_b":   Pattern("a", Pattern("b")),
		"a_c":   Pattern("a", Pattern("c")),
		"a_b_c": Pattern("a", Pattern("b"), Pattern("c")),
		"b_d":   Pattern("b", Pattern("d")),
	}
}

// goldenCounts evaluates every pinned query both ordered and unordered.
// Values are stored as float64 JSON numbers; encoding/json emits the
// shortest representation that round-trips exactly, so == comparison
// against the decoded sidecar is bit-exact.
func goldenCounts(t *testing.T, st *SketchTree) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for name, q := range goldenQueries() {
		ord, err := st.CountOrdered(q)
		if err != nil {
			t.Fatalf("CountOrdered(%s): %v", name, err)
		}
		un, err := st.CountUnordered(q)
		if err != nil {
			t.Fatalf("CountUnordered(%s): %v", name, err)
		}
		out["ordered/"+name] = ord
		out["unordered/"+name] = un
	}
	out["selfjoin"] = st.EstimateSelfJoinSize(true)
	return out
}

// TestGoldenSynopsis pins the binary synopsis format: building the
// fixed stream under a fixed config must reproduce the committed bytes
// exactly, restoring those bytes must answer queries exactly as
// recorded, and a restore → marshal round trip must be byte-identical.
func TestGoldenSynopsis(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			st, err := New(gc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			goldenStream(t, st)
			fresh, err := st.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			counts := goldenCounts(t, st)

			synPath := filepath.Join("testdata", "golden", gc.name+".synopsis")
			cntPath := filepath.Join("testdata", "golden", gc.name+".counts.json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(synPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(synPath, fresh, 0o644); err != nil {
					t.Fatal(err)
				}
				sidecar, err := json.MarshalIndent(counts, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(cntPath, append(sidecar, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d bytes)", synPath, len(fresh))
				return
			}

			golden, err := os.ReadFile(synPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(fresh, golden) {
				t.Errorf("fresh MarshalBinary differs from %s: got %d bytes, want %d; %s",
					synPath, len(fresh), len(golden), firstDiff(fresh, golden))
			}

			var want map[string]float64
			raw, err := os.ReadFile(cntPath)
			if err != nil {
				t.Fatalf("missing counts sidecar (run with -update to create): %v", err)
			}
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("decoding %s: %v", cntPath, err)
			}

			restored, err := Restore(golden)
			if err != nil {
				t.Fatalf("Restore(golden): %v", err)
			}
			got := goldenCounts(t, restored)
			if len(got) != len(want) {
				t.Fatalf("restored answers %d queries, sidecar has %d", len(got), len(want))
			}
			for k, w := range want {
				if g, ok := got[k]; !ok || g != w {
					t.Errorf("restored %s = %v, golden sidecar has %v", k, g, w)
				}
			}

			again, err := restored.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, golden) {
				t.Errorf("restore → marshal round trip not byte-identical: %s", firstDiff(again, golden))
			}
		})
	}
}

// TestGoldenDeterministicRebuild guards the premise the golden files
// rest on: two independent builds over the same stream marshal to the
// same bytes, so any golden mismatch is a real format change, not
// map-iteration noise.
func TestGoldenDeterministicRebuild(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			var prev []byte
			for i := 0; i < 2; i++ {
				st, err := New(gc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				goldenStream(t, st)
				data, err := st.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if prev != nil && !bytes.Equal(data, prev) {
					t.Fatalf("two identical builds marshal differently: %s", firstDiff(data, prev))
				}
				prev = data
			}
		})
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("first difference at byte %d (0x%02x vs 0x%02x)", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("lengths differ (%d vs %d), common prefix identical", len(a), len(b))
}
