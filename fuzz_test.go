package sketchtree

import (
	"strings"
	"testing"

	"sketchtree/internal/tree"
)

// fuzzSynopsis builds a small but fully featured synopsis (top-k on,
// summary on) and marshals it, giving FuzzRestore a structurally valid
// starting point for mutation.
func fuzzSynopsis(f *testing.F) []byte {
	f.Helper()
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 2
	cfg.S1 = 10
	cfg.S2 = 3
	cfg.VirtualStreams = 11
	cfg.TopK = 3
	cfg.BuildSummary = true
	cfg.SummaryMaxNodes = 16
	cfg.Seed = 7
	st, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	for _, d := range []string{"<a><b/></a>", "<a><b/><c/></a>", "<a><c/></a>"} {
		if err := st.AddXML(strings.NewReader(d)); err != nil {
			f.Fatal(err)
		}
	}
	data, err := st.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzParsePattern: any input either fails cleanly or parses to a
// pattern whose serialization parses back to an equal pattern.
func FuzzParsePattern(f *testing.F) {
	for _, seed := range []string{
		"(A)", "(A (B))", "(A (B) (C (D)))", `("a b" (C))`,
		"(", "(A", "()", "(A) junk", "((A))", "(A\t(B)\n)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := ParsePattern(in)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil pattern without error")
		}
		again, err := ParsePattern(q.String())
		if err != nil {
			t.Fatalf("serialization %q of accepted input %q does not parse: %v",
				q.String(), in, err)
		}
		if !tree.Equal(q, again) {
			t.Fatalf("round trip changed the pattern: %q -> %q", in, again.String())
		}
	})
}

// FuzzRestore: corrupted synopsis bytes must produce an error, never a
// panic; inputs Restore accepts must marshal back without error. The
// seeds mutate a genuine synopsis so the fuzzer starts deep inside the
// decode path instead of bouncing off the gob header.
func FuzzRestore(f *testing.F) {
	valid := fuzzSynopsis(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append([]byte{}, valid[1:]...))
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("not a synopsis"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		st, err := Restore(data)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatal("nil SketchTree without error")
		}
		if _, err := st.MarshalBinary(); err != nil {
			t.Fatalf("restored synopsis fails to marshal: %v", err)
		}
	})
}
