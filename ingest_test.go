package sketchtree

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"sketchtree/internal/datagen"
)

// ingestStream materializes a deterministic TREEBANK-style stream so
// sequential and parallel runs see the identical trees.
func ingestStream(t testing.TB, n int) []*Tree {
	t.Helper()
	out := make([]*Tree, 0, n)
	src := datagen.Treebank(17, n)
	if err := src.ForEach(func(tr *Tree) error {
		out = append(out, tr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// The acceptance property of the whole subsystem: the merged synopsis
// is bit-identical to sequential ingestion — not merely close, the
// serialized state matches byte for byte.
func TestIngestorBitIdenticalToSequential(t *testing.T) {
	cfg := testConfig() // TopK = 0
	stream := ingestStream(t, 300)

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range stream {
		if err := seq.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}

	in, err := NewIngestor(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Several producers, interleaved arbitrarily: the result must not
	// depend on which worker shard absorbs which tree.
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(stream); i += 3 {
				if err := in.Add(stream[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	merged, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}

	if merged.TreesProcessed() != seq.TreesProcessed() {
		t.Fatalf("TreesProcessed: merged %d, sequential %d",
			merged.TreesProcessed(), seq.TreesProcessed())
	}
	if merged.PatternsProcessed() != seq.PatternsProcessed() {
		t.Fatalf("PatternsProcessed: merged %d, sequential %d",
			merged.PatternsProcessed(), seq.PatternsProcessed())
	}
	a, err := seq.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := merged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("merged synopsis is not bit-identical to sequential ingestion")
	}
}

func TestIngestorRejectsTopK(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 5
	if _, err := NewIngestor(cfg, 2); err == nil || !strings.Contains(err.Error(), "TopK") {
		t.Fatalf("TopK config accepted: %v", err)
	}
	// Invalid configs propagate the constructor error.
	if _, err := NewIngestor(Config{}, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestIngestorWorkerErrorPropagation(t *testing.T) {
	in, err := NewIngestor(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	good := NewTree(Pattern("a", Pattern("b")))
	if err := in.Add(good); err != nil {
		t.Fatal(err)
	}
	// A tree with a nil root fails inside the worker's AddTree.
	if err := in.Add(&Tree{}); err != nil {
		t.Fatal(err) // the submit itself succeeds; the worker fails
	}
	// The failure cancels ingestion: Add starts returning the worker's
	// error once the cancellation is observed.
	var addErr error
	for i := 0; i < 100000; i++ {
		if addErr = in.Add(good); addErr != nil {
			break
		}
	}
	if addErr == nil || !strings.Contains(addErr.Error(), "nil tree") {
		t.Errorf("Add after worker failure = %v, want the worker error", addErr)
	}
	if _, err := in.Close(); err == nil || !strings.Contains(err.Error(), "nil tree") {
		t.Errorf("Close after worker failure = %v, want the worker error", err)
	}
}

func TestIngestorContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in, err := NewIngestorContext(ctx, testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTree(Pattern("a", Pattern("b")))
	for i := 0; i < 10; i++ {
		if err := in.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	// Workers exit, the bounded queue fills, and Add unblocks with the
	// cancellation cause instead of deadlocking.
	var addErr error
	for i := 0; i < 100000; i++ {
		if addErr = in.Add(tr); addErr != nil {
			break
		}
	}
	if !errors.Is(addErr, context.Canceled) {
		t.Errorf("Add after cancel = %v, want context.Canceled", addErr)
	}
	if _, err := in.Close(); !errors.Is(err, context.Canceled) {
		t.Errorf("Close after cancel = %v, want context.Canceled", err)
	}
}

func TestIngestorCloseSemantics(t *testing.T) {
	in, err := NewIngestor(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Add(NewTree(Pattern("a", Pattern("b")))); err != nil {
		t.Fatal(err)
	}
	st, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.TreesProcessed() != 1 {
		t.Errorf("TreesProcessed = %d, want 1", st.TreesProcessed())
	}
	if err := in.Add(NewTree(Pattern("a"))); !errors.Is(err, ErrIngestorClosed) {
		t.Errorf("Add after Close = %v, want ErrIngestorClosed", err)
	}
	if _, err := in.Close(); !errors.Is(err, ErrIngestorClosed) {
		t.Errorf("second Close = %v, want ErrIngestorClosed", err)
	}
	if in.Workers() != 2 {
		t.Errorf("Workers = %d, want 2", in.Workers())
	}
}

func TestIngestXMLForestMatchesSequential(t *testing.T) {
	cfg := testConfig()
	var sb strings.Builder
	sb.WriteString("<stream>")
	for i := 0; i < 60; i++ {
		switch i % 3 {
		case 0:
			sb.WriteString("<a><b/><c/></a>")
		case 1:
			sb.WriteString("<a><b/><b/></a>")
		case 2:
			sb.WriteString("<x><y><z/></y></x>")
		}
	}
	sb.WriteString("</stream>")
	doc := sb.String()

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.AddXMLForest(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	par, err := IngestXMLForest(strings.NewReader(doc), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := seq.MarshalBinary()
	b, _ := par.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("IngestXMLForest diverged from sequential AddXMLForest")
	}

	// Malformed input fails cleanly.
	if _, err := IngestXMLForest(strings.NewReader("<r><a></r>"), cfg, 2); err == nil {
		t.Error("malformed forest must fail")
	}
	// TopK restriction applies to the convenience wrapper too.
	bad := cfg
	bad.TopK = 3
	if _, err := IngestXMLForest(strings.NewReader(doc), bad, 2); err == nil {
		t.Error("TopK config must fail")
	}
}

func TestIngestorCloseIntoSafe(t *testing.T) {
	cfg := testConfig()
	stream := ingestStream(t, 120)

	dst, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-load the Safe with a prefix sequentially, then fan the rest
	// in through an Ingestor — the live-service shape.
	for _, tr := range stream[:40] {
		if err := dst.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	in, err := NewIngestor(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range stream[40:] {
		if err := in.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.CloseInto(dst); err != nil {
		t.Fatal(err)
	}

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range stream {
		if err := seq.AddTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := seq.MarshalBinary()
	b, _ := dst.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("Safe fan-in diverged from sequential ingestion")
	}
}
