package sketchtree

import (
	"math"
	"strings"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 100
	cfg.S2 = 7
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.Seed = 99
	return cfg
}

func TestQuickstartFlow(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		"<a><b/><c/></a>",
		"<a><b/><b/></a>",
		"<a><c/><b/></a>",
	}
	for _, d := range docs {
		if err := st.AddXML(strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	if st.TreesProcessed() != 3 {
		t.Errorf("TreesProcessed = %d", st.TreesProcessed())
	}
	// a/b appears 1 + 2 + 1 = 4 times.
	got, err := st.CountOrdered(Pattern("a", Pattern("b")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 2 {
		t.Errorf("CountOrdered(a/b) = %v, want ≈ 4", got)
	}
	// Unordered a{b,c}: ordered (b,c) ×1 + (c,b) ×1 = 2.
	got, err = st.CountUnordered(Pattern("a", Pattern("b"), Pattern("c")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 2 {
		t.Errorf("CountUnordered = %v, want ≈ 2", got)
	}
	mem := st.MemoryBytes()
	if mem.Total() <= 0 || mem.SketchCounters <= 0 {
		t.Errorf("memory accounting: %+v", mem)
	}
}

func TestAddXMLForest(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	doc := "<root><a><b/></a><a><b/></a><a><c/></a></root>"
	if err := st.AddXMLForest(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if st.TreesProcessed() != 3 {
		t.Errorf("TreesProcessed = %d", st.TreesProcessed())
	}
	got, err := st.CountOrdered(Pattern("a", Pattern("b")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1.5 {
		t.Errorf("forest count = %v, want ≈ 2", got)
	}
}

func TestCountOrderedSetAndExpression(t *testing.T) {
	cfg := testConfig()
	cfg.Independence = 6
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := st.AddXML(strings.NewReader("<a><b/><c/></a>")); err != nil {
			t.Fatal(err)
		}
	}
	qb, qc := Pattern("a", Pattern("b")), Pattern("a", Pattern("c"))
	got, err := st.CountOrderedSet([]*Node{qb, qc})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-40) > 12 {
		t.Errorf("set count = %v, want ≈ 40", got)
	}
	// (b + c) - b = c = 20.
	got, err = st.EstimateExpression(Sub(Add(Count(qb), Count(qc)), Count(qb)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 8 {
		t.Errorf("expression = %v, want ≈ 20", got)
	}
	// b × c = 400.
	got, err = st.EstimateExpression(Mul(Count(qb), Count(qc)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-400) > 250 {
		t.Errorf("product = %v, want ≈ 400", got)
	}
}

func TestCountExtended(t *testing.T) {
	cfg := testConfig()
	cfg.BuildSummary = true
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.AddXML(strings.NewReader("<a><b><c/></b><c/></a>")); err != nil {
			t.Fatal(err)
		}
	}
	// a//c resolves to a/c and a/b/c: 10 + 10 = 20.
	q, err := ParsePath("a//c")
	if err != nil {
		t.Fatal(err)
	}
	got, truncated, err := st.CountExtended(q)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("unexpected truncation")
	}
	if math.Abs(got-20) > 6 {
		t.Errorf("a//c = %v, want ≈ 20", got)
	}
	// a/* resolves to a/b and a/c: 20.
	q, err = ParsePath("a/*")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = st.CountExtended(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 6 {
		t.Errorf("a/* = %v, want ≈ 20", got)
	}
}

func TestParsePath(t *testing.T) {
	q, err := ParsePath("A/B//C/*")
	if err != nil {
		t.Fatal(err)
	}
	if q.Label != "A" || q.Desc {
		t.Fatalf("root wrong: %+v", q)
	}
	b := q.Children[0]
	if b.Label != "B" || b.Desc {
		t.Fatalf("B wrong: %+v", b)
	}
	c := b.Children[0]
	if c.Label != "C" || !c.Desc {
		t.Fatalf("C must be a descendant edge: %+v", c)
	}
	w := c.Children[0]
	if w.Label != Wildcard || w.Desc {
		t.Fatalf("wildcard wrong: %+v", w)
	}
	// Leading slash tolerated.
	if _, err := ParsePath("/A/B"); err != nil {
		t.Errorf("leading slash: %v", err)
	}
	for _, bad := range []string{"", "/", "A//", "A///B"} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) should fail", bad)
		}
	}
}

func TestParsePattern(t *testing.T) {
	q, err := ParsePattern("(A (B) (C))")
	if err != nil {
		t.Fatal(err)
	}
	if q.Label != "A" || len(q.Children) != 2 {
		t.Errorf("parsed pattern wrong: %s", q)
	}
	if _, err := ParsePattern("not sexp"); err == nil {
		t.Error("bad pattern must fail")
	}
}

func TestArrangementsExported(t *testing.T) {
	arr, err := Arrangements(Pattern("A", Pattern("B"), Pattern("C")), 0)
	if err != nil || len(arr) != 2 {
		t.Errorf("Arrangements = %v, %v", arr, err)
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := testConfig()
	cfg.S1 = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad config must be rejected")
	}
}

func TestParseXMLHelpers(t *testing.T) {
	tr, err := ParseXMLString("<x><y>9 v</y></x>")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Label != "x" {
		t.Errorf("root = %s", tr.Root.Label)
	}
	n := 0
	err = StreamXMLForest(strings.NewReader("<r><a/><b/></r>"), func(*Tree) error {
		n++
		return nil
	})
	if err != nil || n != 2 {
		t.Errorf("forest: %d trees, %v", n, err)
	}
	if _, err := ParseXML(strings.NewReader("")); err == nil {
		t.Error("empty document must fail")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Config().S1 != 100 {
		t.Error("Config accessor wrong")
	}
	if st.PatternsProcessed() != 0 {
		t.Error("fresh sketch must have processed nothing")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 5
	cfg.BuildSummary = true
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st.AddXML(strings.NewReader("<a><b/><c/></a>"))
	}
	var buf strings.Builder
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	q := Pattern("a", Pattern("b"))
	want, _ := st.CountOrdered(q)
	got, err := re.CountOrdered(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("restored estimate %v != %v", got, want)
	}
	if re.TreesProcessed() != st.TreesProcessed() {
		t.Error("counters differ after restore")
	}
	if _, err := Restore([]byte("junk")); err == nil {
		t.Error("junk must fail")
	}
}

func TestRemoveTreePublic(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ParseXMLString("<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st.AddTree(tr)
	}
	for i := 0; i < 2; i++ {
		if err := st.RemoveTree(tr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.CountOrdered(Pattern("a", Pattern("b")))
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("count after removals = %v, want exactly 3 (single-value stream)", got)
	}
	if st.TreesProcessed() != 3 {
		t.Errorf("TreesProcessed = %d", st.TreesProcessed())
	}
}

func TestFrequentPatternsAndSelfJoin(t *testing.T) {
	cfg := testConfig()
	cfg.TopK = 3
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		st.AddXML(strings.NewReader("<a><b/></a>"))
	}
	fps := st.FrequentPatterns()
	if len(fps) == 0 || fps[0].Freq != 40 {
		t.Errorf("FrequentPatterns = %+v, want top freq 40", fps)
	}
	// One distinct pattern, count 40: compensated SJ ≈ 1600, residual ≈ 0.
	if sj := st.EstimateSelfJoinSize(true); sj < 1100 || sj > 2100 {
		t.Errorf("compensated SJ = %v, want ≈ 1600", sj)
	}
	if sj := st.EstimateSelfJoinSize(false); sj > 160 {
		t.Errorf("residual SJ = %v, want ≈ 0", sj)
	}
}

func TestMergePublic(t *testing.T) {
	cfg := testConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a.AddXML(strings.NewReader("<a><b/></a>"))
		b.AddXML(strings.NewReader("<a><b/></a>"))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, err := a.CountOrdered(Pattern("a", Pattern("b")))
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("merged count = %v, want exactly 8", got)
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge must fail")
	}
}

func TestCountOrderedUpperBoundPublic(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPatternEdges = 2
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st.AddXML(strings.NewReader("<a><b><c><d/></c></b></a>"))
	}
	q := Pattern("a", Pattern("b", Pattern("c", Pattern("d"))))
	got, err := st.CountOrderedUpperBound(q)
	if err != nil {
		t.Fatal(err)
	}
	if got < 5 || got > 20 {
		t.Errorf("upper bound = %v, want ≈ 10", got)
	}
}

func TestCountAlternativesPublic(t *testing.T) {
	st, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		st.AddXML(strings.NewReader("<vp><vbd/><np/></vp>"))
	}
	for i := 0; i < 4; i++ {
		st.AddXML(strings.NewReader("<vp><vbz/><np/></vp>"))
	}
	got, err := st.CountAlternatives(Pattern("vp", Pattern("vbd|vbz"), Pattern("np")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 4 {
		t.Errorf("OR count = %v, want ≈ 10", got)
	}
	if _, err := st.CountAlternatives(nil); err == nil {
		t.Error("nil must fail")
	}
}
