package sketchtree

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// windowGoldenConfig is the base golden configuration (no top-k, no
// summary, no exact baseline — the mergeable subset the window
// requires).
func windowGoldenConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxPatternEdges = 3
	cfg.S1 = 40
	cfg.S2 = 5
	cfg.VirtualStreams = 23
	cfg.TopK = 0
	cfg.Seed = 99
	return cfg
}

// windowGoldenStream drives the fixed windowed lifecycle: the 30-tree
// golden stream through a 3-slice ring sealing every 8 trees. Slices
// seal after trees 8, 16 and 24; the third seal fills the ring and the
// fourth (tree 32 never arrives) would expire — so after 30 trees the
// first advance's slice (trees 1–8) has expired and trees 9–30 are
// live: build → advance → expire, end to end.
func windowGoldenStream(t *testing.T, safe *Safe) {
	t.Helper()
	docs := []string{
		"<a><b/><c/></a>",
		"<a><b/><b/></a>",
		"<a><c/><b/></a>",
		"<a><b><d/></b></a>",
		"<d><a><b/></a></d>",
	}
	for i := 0; i < 30; i++ {
		if err := safe.AddXML(strings.NewReader(docs[i%len(docs)])); err != nil {
			t.Fatalf("window golden stream tree %d: %v", i, err)
		}
	}
	if err := safe.RefreshWindow(); err != nil {
		t.Fatal(err)
	}
}

// windowGoldenCounts pins the windowed answers, reusing the landmark
// golden probes.
func windowGoldenCounts(t *testing.T, safe *Safe) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for name, q := range goldenQueries() {
		ord, err := safe.CountOrdered(q)
		if err != nil {
			t.Fatalf("CountOrdered(%s): %v", name, err)
		}
		un, err := safe.CountUnordered(q)
		if err != nil {
			t.Fatalf("CountUnordered(%s): %v", name, err)
		}
		out["ordered/"+name] = ord
		out["unordered/"+name] = un
	}
	out["selfjoin"] = safe.EstimateSelfJoinSize(true)
	return out
}

// TestGoldenWindowSynopsis pins a windowed lifecycle — build, advance,
// expire — to committed bytes: the merged synopsis after the fixed
// stream must reproduce testdata/golden/window.synopsis exactly,
// restoring those bytes must answer the pinned queries exactly, and
// (the window's defining property) the bytes must equal a fresh
// landmark engine fed only the live-slice documents. Regenerate with
// -update per the golden convention.
func TestGoldenWindowSynopsis(t *testing.T) {
	cfg := windowGoldenConfig()
	safe, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := safe.EnableWindow(WindowPolicy{
		Slices:            3,
		SliceTrees:        8,
		RefreshEveryTrees: -1, // windowGoldenStream refreshes explicitly
	}); err != nil {
		t.Fatal(err)
	}
	defer safe.DisableWindow()
	windowGoldenStream(t, safe)

	// Lifecycle sanity: all three advances happened and the first slice
	// expired, so the lifecycle the golden pins is the one described.
	ws, ok := safe.WindowStats()
	if !ok {
		t.Fatal("window disabled mid-test")
	}
	if ws.Advances != 3 || ws.Expires != 1 {
		t.Fatalf("lifecycle drifted: advances=%d expires=%d, want 3/1 — the golden no longer pins build→advance→expire", ws.Advances, ws.Expires)
	}
	if ws.LiveTrees != 22 { // trees 9..30
		t.Fatalf("live trees = %d, want 22", ws.LiveTrees)
	}

	fresh, err := safe.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	counts := windowGoldenCounts(t, safe)

	// Self-check of the equivalence the golden rests on: the merged
	// bytes equal a fresh landmark engine fed the 22 live documents.
	landmark, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		"<a><b/><c/></a>",
		"<a><b/><b/></a>",
		"<a><c/><b/></a>",
		"<a><b><d/></b></a>",
		"<d><a><b/></a></d>",
	}
	for i := 8; i < 30; i++ {
		if err := landmark.AddXML(strings.NewReader(docs[i%len(docs)])); err != nil {
			t.Fatal(err)
		}
	}
	landmarkBytes, err := landmark.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, landmarkBytes) {
		t.Fatalf("windowed bytes differ from fresh engine fed live docs: %s", firstDiff(fresh, landmarkBytes))
	}

	synPath := filepath.Join("testdata", "golden", "window.synopsis")
	cntPath := filepath.Join("testdata", "golden", "window.counts.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(synPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(synPath, fresh, 0o644); err != nil {
			t.Fatal(err)
		}
		sidecar, err := json.MarshalIndent(counts, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cntPath, append(sidecar, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", synPath, len(fresh))
		return
	}

	golden, err := os.ReadFile(synPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(fresh, golden) {
		t.Errorf("windowed MarshalBinary differs from %s: got %d bytes, want %d; %s",
			synPath, len(fresh), len(golden), firstDiff(fresh, golden))
	}

	var want map[string]float64
	raw, err := os.ReadFile(cntPath)
	if err != nil {
		t.Fatalf("missing counts sidecar (run with -update to create): %v", err)
	}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("decoding %s: %v", cntPath, err)
	}
	if len(counts) != len(want) {
		t.Fatalf("computed %d answers, sidecar has %d", len(counts), len(want))
	}
	for k, w := range want {
		if g, ok := counts[k]; !ok || g != w {
			t.Errorf("windowed %s = %v, golden sidecar has %v", k, g, w)
		}
	}

	// The merged bytes restore into an ordinary landmark synopsis — a
	// windowed checkpoint is a plain synopsis of the live documents —
	// and round-trip byte-identically.
	restored, err := Restore(golden)
	if err != nil {
		t.Fatalf("Restore(golden): %v", err)
	}
	if got := restored.TreesProcessed(); got != 22 {
		t.Errorf("restored TreesProcessed = %d, want 22", got)
	}
	again, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, golden) {
		t.Errorf("restore → marshal round trip not byte-identical: %s", firstDiff(again, golden))
	}
}
