package sketchtree

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// ErrIngestorClosed is returned by Ingestor.Add after Close has been
// called, and by Close itself when called more than once.
var ErrIngestorClosed = errors.New("sketchtree: ingestor closed")

// Ingestor ingests a tree stream in parallel across N worker shards.
// Each shard is a private SketchTree built from the same Config (and
// Seed); producers fan trees out over a bounded channel with
// backpressure, and Close merges the shards cell-wise into one
// synopsis. Because AMS sketches are linear projections (§5.2), the
// merged synopsis is bit-identical to sequential ingestion of the same
// trees in any order — the sketch cells are exact integer sums that
// commute.
//
// Top-k tracking must be off (Config.TopK = 0): shard synopses with
// top-k deletion interleaved into their counters have no well-defined
// union (see SketchTree.Merge). NewIngestor rejects such configs.
//
// Add is safe for concurrent use by any number of producers. Close
// waits for in-flight Add calls, drains the queue, joins the workers,
// and performs the merge; the first worker error cancels ingestion and
// is reported by Add and Close. Cancelling the context passed to
// NewIngestorContext aborts ingestion the same way.
type Ingestor struct {
	shards []*SketchTree
	ch     chan *Tree
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelCauseFunc

	// mu guards closed. Add holds the read side across the channel
	// send, so Close (write side) cannot close the channel while a
	// send is in flight.
	mu     sync.RWMutex
	closed bool
}

// NewIngestor creates a parallel ingestor with the given number of
// worker shards; workers <= 0 uses runtime.GOMAXPROCS(0).
func NewIngestor(cfg Config, workers int) (*Ingestor, error) {
	return NewIngestorContext(context.Background(), cfg, workers)
}

// NewIngestorContext is NewIngestor with a cancellation context:
// cancelling ctx aborts ingestion, unblocking producers and failing
// Close with the cancellation cause.
func NewIngestorContext(ctx context.Context, cfg Config, workers int) (*Ingestor, error) {
	if cfg.TopK != 0 {
		return nil, fmt.Errorf("sketchtree: parallel ingestion requires Config.TopK = 0: shard synopses with top-k tracking cannot be merged (see SketchTree.Merge)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := make([]*SketchTree, workers)
	for i := range shards {
		st, err := New(cfg)
		if err != nil {
			return nil, err
		}
		shards[i] = st
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	in := &Ingestor{
		shards: shards,
		// 2 trees of headroom per worker: enough to keep workers busy
		// while a producer parses, small enough for backpressure to
		// bound memory on a fast producer.
		ch:     make(chan *Tree, 2*workers),
		ctx:    ctx,
		cancel: cancel,
	}
	for _, shard := range shards {
		in.wg.Add(1)
		go in.work(shard)
	}
	return in, nil
}

// Workers returns the number of worker shards.
func (in *Ingestor) Workers() int { return len(in.shards) }

func (in *Ingestor) work(shard *SketchTree) {
	defer in.wg.Done()
	for {
		// Checked first so workers stop promptly after a cancellation
		// even while the queue still holds trees.
		if in.ctx.Err() != nil {
			return
		}
		select {
		case <-in.ctx.Done():
			return
		case t, ok := <-in.ch:
			if !ok {
				return
			}
			if err := shard.AddTree(t); err != nil {
				in.cancel(err) // first cause wins; unblocks producers
				return
			}
		}
	}
}

// Add submits one tree for ingestion, blocking when the queue is full
// (backpressure). It returns ErrIngestorClosed after Close, and the
// first worker error or the context's cancellation cause once
// ingestion has been aborted.
func (in *Ingestor) Add(t *Tree) error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return ErrIngestorClosed
	}
	select {
	case in.ch <- t:
		return nil
	case <-in.ctx.Done():
		return context.Cause(in.ctx)
	}
}

// AddXML parses one XML document and submits it for ingestion.
func (in *Ingestor) AddXML(r io.Reader) error {
	t, err := ParseXML(r)
	if err != nil {
		return err
	}
	return in.Add(t)
}

// AddXMLForest streams every tree of a rooted XML forest document into
// the ingestor: parsing overlaps with the workers' sketch updates.
func (in *Ingestor) AddXMLForest(r io.Reader) error {
	return StreamXMLForest(r, in.Add)
}

// Err returns the first worker error or external cancellation cause,
// or nil while ingestion is healthy.
func (in *Ingestor) Err() error {
	if err := context.Cause(in.ctx); err != nil && !errors.Is(err, ErrIngestorClosed) {
		return err
	}
	return nil
}

// Close waits for queued trees to drain, stops the workers, and merges
// the shards (in shard order — deterministic, though any order yields
// the same bits) into a single synopsis. If a worker failed or the
// context was cancelled, Close returns that error and the partial
// synopsis is discarded. Close is safe to call concurrently with Add:
// in-flight Adds complete (or fail) before the queue closes, and Adds
// that begin afterwards return ErrIngestorClosed.
func (in *Ingestor) Close() (*SketchTree, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrIngestorClosed
	}
	in.closed = true
	close(in.ch)
	in.mu.Unlock()
	in.wg.Wait()
	in.cancel(ErrIngestorClosed) // release the context; earlier causes win
	if err := in.Err(); err != nil {
		return nil, err
	}
	merged := in.shards[0]
	for _, s := range in.shards[1:] {
		if err := merged.Merge(s); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// CloseInto closes the ingestor and merges the result into dst under
// dst's write lock — the fan-in for a live service that keeps a Safe
// synopsis answering queries while batches ingest in parallel.
func (in *Ingestor) CloseInto(dst *Safe) error {
	st, err := in.Close()
	if err != nil {
		return err
	}
	return dst.Merge(st)
}

// IngestXMLForest builds a synopsis of a rooted XML forest document by
// fanning its trees out over a parallel Ingestor — the concurrent
// counterpart of SketchTree.AddXMLForest. workers <= 0 uses
// runtime.GOMAXPROCS(0); cfg must have TopK = 0.
func IngestXMLForest(r io.Reader, cfg Config, workers int) (*SketchTree, error) {
	in, err := NewIngestor(cfg, workers)
	if err != nil {
		return nil, err
	}
	if err := in.AddXMLForest(r); err != nil {
		in.cancel(err) // stop workers promptly; Close reports this cause
		in.Close()
		return nil, err
	}
	return in.Close()
}
