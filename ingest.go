package sketchtree

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sketchtree/internal/obs"
)

// ErrIngestorClosed is returned by Ingestor.Add after Close has been
// called, and by Close itself when called more than once.
var ErrIngestorClosed = errors.New("sketchtree: ingestor closed")

// Ingestor ingests a tree stream in parallel across N worker shards.
// Each shard is a private SketchTree built from the same Config (and
// Seed); producers fan trees out over a bounded channel with
// backpressure, and Close merges the shards cell-wise into one
// synopsis. Because AMS sketches are linear projections (§5.2), the
// merged synopsis is bit-identical to sequential ingestion of the same
// trees in any order — the sketch cells are exact integer sums that
// commute.
//
// Top-k tracking must be off (Config.TopK = 0): shard synopses with
// top-k deletion interleaved into their counters have no well-defined
// union (see SketchTree.Merge). NewIngestor rejects such configs.
//
// Add is safe for concurrent use by any number of producers. Close
// waits for in-flight Add calls, drains the queue, joins the workers,
// and performs the merge; the first worker error cancels ingestion and
// is reported by Add and Close. Cancelling the context passed to
// NewIngestorContext aborts ingestion the same way.
type Ingestor struct {
	shards []*SketchTree
	ch     chan *Tree
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelCauseFunc

	// met carries producer-side stages (XML parse time); the per-shard
	// enumeration/sketch stages live on each shard's own metrics.
	met *obs.Metrics
	// Queue telemetry: the high-water mark of the bounded channel's
	// depth (always on — no clock), and how long producers spent
	// blocked on a full queue (timers only).
	queueHWM   atomic.Int64
	blocks     atomic.Int64
	blockNanos atomic.Int64

	// mu guards closed. Add holds the read side across the channel
	// send, so Close (write side) cannot close the channel while a
	// send is in flight.
	mu     sync.RWMutex
	closed bool
}

// NewIngestor creates a parallel ingestor with the given number of
// worker shards; workers <= 0 uses runtime.GOMAXPROCS(0).
func NewIngestor(cfg Config, workers int) (*Ingestor, error) {
	return NewIngestorContext(context.Background(), cfg, workers)
}

// NewIngestorContext is NewIngestor with a cancellation context:
// cancelling ctx aborts ingestion, unblocking producers and failing
// Close with the cancellation cause.
func NewIngestorContext(ctx context.Context, cfg Config, workers int) (*Ingestor, error) {
	if cfg.TopK != 0 {
		return nil, fmt.Errorf("sketchtree: parallel ingestion requires Config.TopK = 0: shard synopses with top-k tracking cannot be merged (see SketchTree.Merge)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := make([]*SketchTree, workers)
	for i := range shards {
		st, err := New(cfg)
		if err != nil {
			return nil, err
		}
		shards[i] = st
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	in := &Ingestor{
		shards: shards,
		// 2 trees of headroom per worker: enough to keep workers busy
		// while a producer parses, small enough for backpressure to
		// bound memory on a fast producer.
		ch:     make(chan *Tree, 2*workers),
		ctx:    ctx,
		cancel: cancel,
		met:    &obs.Metrics{},
	}
	for _, shard := range shards {
		in.wg.Add(1)
		go in.work(shard)
	}
	return in, nil
}

// Workers returns the number of worker shards.
func (in *Ingestor) Workers() int { return len(in.shards) }

func (in *Ingestor) work(shard *SketchTree) {
	defer in.wg.Done()
	for {
		// Checked first so workers stop promptly after a cancellation
		// even while the queue still holds trees.
		if in.ctx.Err() != nil {
			return
		}
		select {
		case <-in.ctx.Done():
			return
		case t, ok := <-in.ch:
			if !ok {
				return
			}
			if err := shard.AddTree(t); err != nil {
				in.cancel(err) // first cause wins; unblocks producers
				return
			}
		}
	}
}

// Add submits one tree for ingestion, blocking when the queue is full
// (backpressure). It returns ErrIngestorClosed after Close, and the
// first worker error or the context's cancellation cause once
// ingestion has been aborted.
func (in *Ingestor) Add(t *Tree) error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return ErrIngestorClosed
	}
	// Fast path: queue has room. The failed non-blocking attempt is
	// how backpressure becomes observable without any clock calls.
	select {
	case in.ch <- t: //lint:allow lockorder non-blocking send; RLock only fences Close, which takes the write lock
		in.noteDepth()
		return nil
	default:
	}
	in.blocks.Add(1)
	start := in.met.Now() // zero (no clock call) unless timers are on
	select {
	case in.ch <- t: //lint:allow lockorder blocking here is the backpressure contract; Close fences senders via the write lock
		if !start.IsZero() {
			in.blockNanos.Add(time.Since(start).Nanoseconds())
		}
		in.noteDepth()
		return nil
	case <-in.ctx.Done():
		return context.Cause(in.ctx)
	}
}

// noteDepth maintains the queue-depth high-water mark after a send.
func (in *Ingestor) noteDepth() {
	d := int64(len(in.ch))
	for {
		cur := in.queueHWM.Load()
		if d <= cur || in.queueHWM.CompareAndSwap(cur, d) {
			return
		}
	}
}

// AddXML parses one XML document and submits it for ingestion.
func (in *Ingestor) AddXML(r io.Reader) error {
	start := in.met.Now()
	t, err := ParseXML(r)
	in.met.StageSince(obs.StageParse, start)
	if err != nil {
		return err
	}
	return in.Add(t)
}

// AddXMLForest streams every tree of a rooted XML forest document into
// the ingestor: parsing overlaps with the workers' sketch updates.
// Time blocked on a full queue is accounted as producer block time,
// not parse time.
func (in *Ingestor) AddXMLForest(r io.Reader) error {
	return streamForestTimed(in.met, r, in.Add)
}

// EnableMetrics switches stage timers on for the producer side (XML
// parse, block-time measurement) and every worker shard (enumeration,
// fingerprint, sketch stages). Counters and the queue high-water mark
// are always maintained. Call it right after NewIngestor for complete
// timings; flipping mid-stream is safe but only covers later work.
func (in *Ingestor) EnableMetrics(on bool) {
	in.met.EnableTimers(on)
	for _, s := range in.shards {
		s.EnableMetrics(on)
	}
}

// ShardStats is one worker shard's ingestion totals.
type ShardStats struct {
	Trees    int64
	Patterns int64
}

// IngestStats is the Ingestor's observability snapshot: the aggregate
// pipeline snapshot (shards summed plus producer-side parsing) and the
// queue/backpressure telemetry. Safe to call while ingestion runs; the
// totals are per-counter exact but not cut at a single instant.
type IngestStats struct {
	// Snapshot aggregates every shard's stage timings and counters
	// with the producer-side parse stage.
	Snapshot Stats
	// Shards holds per-shard trees/patterns — the fan-out balance.
	Shards []ShardStats
	// QueueCapacity and QueueHighWater bound and report the deepest
	// the bounded tree queue has been after a send.
	QueueCapacity  int
	QueueHighWater int
	// ProducerBlocks counts Adds that found the queue full;
	// ProducerBlockTime is the total time producers spent blocked
	// (measured only while metrics are enabled).
	ProducerBlocks    int64
	ProducerBlockTime time.Duration
}

// Stats reads the ingestor's observability snapshot. It is meant for
// live monitoring while ingestion runs; after Close, read the merged
// SketchTree's Stats instead (the merge folds shard 0 and the
// producer-side totals together, so this aggregate would double
// count).
func (in *Ingestor) Stats() IngestStats {
	st := IngestStats{
		Snapshot:          in.met.Snapshot(),
		Shards:            make([]ShardStats, len(in.shards)),
		QueueCapacity:     cap(in.ch),
		QueueHighWater:    int(in.queueHWM.Load()),
		ProducerBlocks:    in.blocks.Load(),
		ProducerBlockTime: time.Duration(in.blockNanos.Load()),
	}
	for i, s := range in.shards {
		snap := s.Stats()
		st.Shards[i] = ShardStats{Trees: snap.Trees, Patterns: snap.Patterns}
		st.Snapshot.Add(snap)
	}
	return st
}

// Err returns the first worker error or external cancellation cause,
// or nil while ingestion is healthy.
func (in *Ingestor) Err() error {
	if err := context.Cause(in.ctx); err != nil && !errors.Is(err, ErrIngestorClosed) {
		return err
	}
	return nil
}

// Close waits for queued trees to drain, stops the workers, and merges
// the shards (in shard order — deterministic, though any order yields
// the same bits) into a single synopsis. If a worker failed or the
// context was cancelled, Close returns that error and the partial
// synopsis is discarded. Close is safe to call concurrently with Add:
// in-flight Adds complete (or fail) before the queue closes, and Adds
// that begin afterwards return ErrIngestorClosed.
func (in *Ingestor) Close() (*SketchTree, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrIngestorClosed
	}
	in.closed = true
	close(in.ch)
	in.mu.Unlock()
	in.wg.Wait()
	in.cancel(ErrIngestorClosed) // release the context; earlier causes win
	if err := in.Err(); err != nil {
		return nil, err
	}
	merged := in.shards[0]
	for _, s := range in.shards[1:] {
		if err := merged.Merge(s); err != nil {
			return nil, err
		}
	}
	// Producer-side work (XML parse time, if timed) transfers to the
	// merged synopsis, whose Stats then covers the whole pipeline. The
	// per-shard stage timings were folded in by Merge itself.
	merged.e.Metrics().Absorb(in.met)
	return merged, nil
}

// CloseInto closes the ingestor and merges the result into dst under
// dst's write lock — the fan-in for a live service that keeps a Safe
// synopsis answering queries while batches ingest in parallel.
func (in *Ingestor) CloseInto(dst *Safe) error {
	st, err := in.Close()
	if err != nil {
		return err
	}
	return dst.Merge(st)
}

// IngestXMLForest builds a synopsis of a rooted XML forest document by
// fanning its trees out over a parallel Ingestor — the concurrent
// counterpart of SketchTree.AddXMLForest. workers <= 0 uses
// runtime.GOMAXPROCS(0); cfg must have TopK = 0.
func IngestXMLForest(r io.Reader, cfg Config, workers int) (*SketchTree, error) {
	in, err := NewIngestor(cfg, workers)
	if err != nil {
		return nil, err
	}
	if err := in.AddXMLForest(r); err != nil {
		in.cancel(err) // stop workers promptly; Close reports this cause
		in.Close()
		return nil, err
	}
	return in.Close()
}
